//! The [`Database`] facade: catalog, statement execution, transactions,
//! write-ahead logging, checkpointing and recovery.
//!
//! # Concurrency model
//!
//! Engine state is split so readers never contend with each other:
//!
//! * the **catalog** (tables, rows, indexes) sits behind a
//!   [`parking_lot::RwLock`]. Read-only statements execute under a *shared*
//!   read guard, so any number of threads run SELECTs in parallel; mutating
//!   statements take the write guard for the duration of the statement.
//! * **transaction, lock and WAL state** ([`TxnManager`], [`LockManager`],
//!   [`Wal`]) lives under its own small mutex, held only for the brief
//!   book-keeping sections of a statement — never across row access.
//! * the **statement cache** has a third, independent lock so cache probes
//!   do not serialise against execution.
//! * **statistics** accumulate into a stack-local [`OpStats`] per statement
//!   and merge into lock-free [`SharedStats`] atomics at the end, so
//!   counting rows no longer forces `&mut` exclusivity on the read path.
//!
//! # MVCC: readers never fail against writers
//!
//! Reads are isolated by **snapshots**, not locks (see [`crate::mvcc`]).
//! Every SELECT — autocommit, in-transaction, and batched — carries a
//! [`Snapshot`] and resolves each row's version chain against it: an
//! autocommit read takes a fresh snapshot per statement, an explicit
//! transaction reuses the snapshot stamped at `begin()` (repeatable reads).
//! Readers acquire **no table locks** and never return
//! [`Error::LockConflict`]; the lock table now serialises only write-write
//! conflicts. Old versions are pruned by vacuum: [`Database::checkpoint`]
//! sweeps every table, and a write statement that leaves a table with more
//! than [`VACUUM_DEAD_THRESHOLD`] dead versions triggers a targeted sweep.
//!
//! Lock order is `catalog` before `ctl` (the control mutex); no code path
//! acquires the catalog while holding `ctl`. Autocommit SELECTs take the
//! read guard first and then their snapshot, which makes the snapshot
//! race-free: any commit that lands after the guard is acquired simply is
//! not in the snapshot, and its versions are filtered out by visibility.
//!
//! # Resource governance
//!
//! Every execution path has a `_governed` variant taking a
//! [`Governance`]: statement deadlines and cooperative cancellation
//! (checked every [`crate::govern::DEFAULT_CHECK_INTERVAL`] rows in all
//! executor loops), row/byte result budgets, and bounded lock waits (a
//! conflicted writer waits *before* taking the catalog write guard, so
//! waiting never blocks readers). Abandoned transactions are reclaimed by
//! [`Database::reap_idle`]. The ungoverned API runs with a disarmed
//! governor whose per-row cost is a single branch.

use crate::error::{Error, Result, TimeoutKind};
use crate::exec::{
    execute_select_opts, execute_select_with, matching_row_ids_with, Catalog, ExecOptions,
    QueryResult,
};
use crate::govern::{Governance, Governor};
use crate::io::{DurabilityPolicy, Failpoints, FsDevice, LogDevice};
use crate::mvcc::Snapshot;
use crate::obs::clock::Stopwatch;
use crate::obs::{self, systables, Observability, StmtKind, StmtProfile, StmtProfileSnapshot, WaitBreakdown};
use crate::plan::{self, plan_select, PlanCell, PlanProfile, PlanSlot};
use crate::predicate::Expr;
use crate::schema::{lower_name, IndexDef, Schema};
use crate::sql::ast::{DeleteStmt, InsertStmt, SelectStmt, Statement, UpdateStmt};
use crate::sql::parser::parse;
use crate::stats::{OpStats, SharedStats};
use crate::storage::{
    BlockDevice, BufferPool, FsBlockDevice, PageStore, PagedConfig, PagedEngine,
};
use crate::table::Table;
use crate::tuple::{Row, RowId};
use crate::txn::{LockManager, LockMode, TxnManager, UndoRecord};
use crate::value::Value;
use crate::wal::{LogRecord, TableSnapshot, TxnId, Wal};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dead (superseded or tombstoned) versions a table may accumulate before a
/// write statement on it triggers a targeted vacuum sweep. Checkpoints sweep
/// unconditionally.
pub const VACUUM_DEAD_THRESHOLD: usize = 256;

/// Polling quantum for bounded lock waits: a writer blocked on a table lock
/// re-probes the lock table at most this often. The control mutex is *not*
/// held between probes, so waiting writers never block readers, the lock
/// holder's commit, or each other's book-keeping.
const LOCK_WAIT_POLL: Duration = Duration::from_micros(500);

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// A SELECT produced rows.
    Query(QueryResult),
    /// A DML statement affected this many rows.
    Affected(usize),
    /// A DDL or transaction-control statement completed.
    Ack,
}

impl ExecResult {
    /// The query result, if this was a SELECT.
    pub fn query(self) -> Result<QueryResult> {
        match self {
            ExecResult::Query(q) => Ok(q),
            other => Err(Error::type_err(format!("expected query result, got {other:?}"))),
        }
    }

    /// The affected-row count, if this was a DML statement.
    pub fn affected(&self) -> usize {
        match self {
            ExecResult::Affected(n) => *n,
            _ => 0,
        }
    }
}

/// A statement prepared once and executable many times with different bound
/// parameter values. Obtained from [`Database::prepare`]; cheap to clone
/// (the parsed AST is shared).
#[derive(Debug, Clone)]
pub struct Prepared {
    stmt: Arc<Statement>,
    params: usize,
    /// The cumulative execution profile for this statement text, shared with
    /// the statement-cache entry (and with every other `Prepared` handle for
    /// the same text), so recording an execution is lock-free.
    profile: Arc<StmtProfile>,
    /// The plan cache cell for this statement text: the chosen [`plan`] plan
    /// plus reusable hash-join build sides, shared with the cache entry and
    /// invalidated when the database's plan generation moves (DDL, ANALYZE).
    plan: Arc<PlanCell>,
}

impl Prepared {
    /// The parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }

    /// Number of `?` parameter slots the statement expects.
    pub fn param_count(&self) -> usize {
        self.params
    }

    /// A snapshot of this statement's cumulative execution profile (the
    /// `rel_statements` row it shares with the statement cache).
    pub fn profile(&self) -> StmtProfileSnapshot {
        self.profile.snapshot()
    }
}

/// Default capacity of the per-database LRU statement cache.
const STMT_CACHE_CAPACITY: usize = 256;

/// What [`Database::cached_parse`] yields: the shared AST, its `?` count,
/// the statement's execution profile and its plan cache cell.
type ParsedStmt = (Arc<Statement>, usize, Arc<StmtProfile>, Arc<PlanCell>);

/// An LRU cache of parsed statements keyed by their SQL text.
///
/// Recency is a monotonically increasing generation stamped on each touch, so
/// a hit is one hash lookup and a counter bump — no allocation, no ordered
/// structure to maintain. Eviction (rare: only on a miss at capacity) scans
/// for the minimum generation, O(capacity).
#[derive(Debug)]
struct StmtCache {
    capacity: usize,
    entries: HashMap<String, CacheEntry>,
    next_gen: u64,
}

#[derive(Debug)]
struct CacheEntry {
    stmt: Arc<Statement>,
    params: usize,
    /// The statement's execution profile. Owned by the cache entry so the
    /// profile table is bounded by the cache's LRU; shared with every
    /// [`Prepared`] handle for this text.
    profile: Arc<StmtProfile>,
    /// The statement's plan cache cell, shared with every [`Prepared`]
    /// handle for this text.
    plan: Arc<PlanCell>,
    gen: u64,
}

impl Default for StmtCache {
    fn default() -> Self {
        StmtCache {
            capacity: STMT_CACHE_CAPACITY,
            entries: HashMap::new(),
            next_gen: 0,
        }
    }
}

impl StmtCache {
    /// Looks up `sql`, refreshing its recency on a hit.
    fn get(&mut self, sql: &str) -> Option<ParsedStmt> {
        let entry = self.entries.get_mut(sql)?;
        entry.gen = self.next_gen;
        self.next_gen += 1;
        Some((
            Arc::clone(&entry.stmt),
            entry.params,
            Arc::clone(&entry.profile),
            Arc::clone(&entry.plan),
        ))
    }

    /// Inserts a parsed statement, evicting the least-recently-used entry
    /// when at capacity. A zero capacity disables caching.
    fn insert(
        &mut self,
        sql: String,
        stmt: Arc<Statement>,
        params: usize,
        profile: Arc<StmtProfile>,
        plan: Arc<PlanCell>,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.entries.remove(&sql);
        while self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        self.entries.insert(sql, CacheEntry { stmt, params, profile, plan, gen });
    }

    /// Snapshots every live entry's execution profile — the rows of
    /// `rel_statements`.
    fn profiles(&self) -> Vec<StmtProfileSnapshot> {
        self.entries.values().map(|e| e.profile.snapshot()).collect()
    }

    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.gen)
            .map(|(sql, _)| sql.clone());
        match victim {
            Some(sql) => {
                self.entries.remove(&sql);
            }
            None => unreachable!("evict_lru called on an empty cache"),
        }
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > capacity {
            self.evict_lru();
        }
    }
}

/// Transaction, lock and WAL state: everything a statement touches only for
/// brief book-keeping, kept apart from the catalog so readers sharing the
/// catalog guard do not serialise on it.
#[derive(Debug, Default)]
struct Control {
    wal: Wal,
    locks: LockManager,
    txns: TxnManager,
    /// The paged storage engine, present only for databases opened through
    /// [`Database::open_paged`]. Lives beside the WAL so commit can borrow
    /// both at once: applying a commit to pages may evict frames, and the
    /// eviction's write-back must be able to flush the WAL first
    /// (WAL-before-data).
    paged: Option<PagedEngine>,
}

/// An embedded relational database.
///
/// The database is the DB2 stand-in of the reproduction: the CondorJ2
/// application server holds exactly one `Database` and turns every incoming
/// message into statements against it. All methods are safe to call from
/// multiple threads. Read-only statements run concurrently under a shared
/// catalog guard; mutating statements serialise on the catalog write guard
/// (see the module docs for the full locking model).
#[derive(Debug, Default)]
pub struct Database {
    /// Tables with their rows and indexes. SELECTs hold the read guard.
    catalog: RwLock<Catalog>,
    /// Transaction/lock/WAL book-keeping under its own short-lived mutex.
    ctl: Mutex<Control>,
    /// Parsed-statement cache, independent so probes don't block execution.
    stmt_cache: Mutex<StmtCache>,
    /// Lock-free cumulative operation counters.
    stats: SharedStats,
    /// Latency histograms, the slow-query ring and the event ring (see
    /// [`crate::obs`]). Shared via `Arc` with the WAL so fsync spans are
    /// recorded at the device seam.
    obs: Arc<Observability>,
    /// Fault-injection registry consulted by the durable-log IO path. Free
    /// (one relaxed atomic load) when nothing is armed, which is always the
    /// case outside crash tests.
    failpoints: Arc<Failpoints>,
    /// Database-wide default for how long a write statement waits on a
    /// conflicted table lock before giving up. `ZERO` (the default) fails
    /// fast with [`Error::LockConflict`], exactly the pre-governance
    /// behaviour; a per-statement [`Governance::lock_wait`] overrides it.
    lock_wait: Mutex<Duration>,
    /// Plan-cache generation. Bumped by DDL and `ANALYZE`; a cached plan
    /// whose slot generation falls behind is dropped and replanned on its
    /// next execution.
    plan_gen: AtomicU64,
    /// Bench/test knob: keep joins in syntactic order instead of letting the
    /// planner reorder by estimated build size.
    planner_no_reorder: AtomicBool,
    /// Bench/test knob: force full scans of the base table, ignoring the
    /// cost-based access-path choice.
    planner_force_scan: AtomicBool,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Opens a crash-safe database whose WAL lives in the segment file at
    /// `path` (created if absent), fsyncing on every commit
    /// ([`DurabilityPolicy::Always`]). Committed state found in the file is
    /// recovered; see the crate-level "Durability & recovery" docs.
    pub fn open_durable(path: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::open_durable_with(path, DurabilityPolicy::Always)
    }

    /// As [`Database::open_durable`], with an explicit fsync policy.
    pub fn open_durable_with(
        path: impl AsRef<std::path::Path>,
        policy: DurabilityPolicy,
    ) -> Result<Self> {
        Self::open_with_device(Box::new(FsDevice::open(path)?), policy)
    }

    /// Opens a durable database over an arbitrary [`LogDevice`] — the seam
    /// crash tests use to run real recovery against a deterministic
    /// in-memory device ([`crate::MemDevice`]).
    ///
    /// Recovery is torn-tail tolerant: a partial record at the end of the
    /// device is truncated off (counted in
    /// [`OpStats::recovery_truncated_bytes`]) and the database comes up with
    /// exactly the committed prefix; corruption anywhere earlier fails with
    /// [`Error::Corruption`].
    pub fn open_with_device(
        device: Box<dyn LogDevice>,
        policy: DurabilityPolicy,
    ) -> Result<Self> {
        let sw = Stopwatch::start();
        let failpoints = Arc::new(Failpoints::new());
        let mut local = OpStats::default();
        let wal = Wal::open_device(device, policy, Arc::clone(&failpoints), &mut local)?;
        let catalog = wal.recover()?;
        let db = Database {
            failpoints,
            ..Database::default()
        };
        *db.catalog.write() = catalog;
        let wal_records = wal.len();
        {
            let mut ctl = db.ctl.lock();
            // New transactions must not reuse ids already in the log: a
            // colliding Commit record from a previous run would make this
            // run's uncommitted changes look committed at the next recovery.
            ctl.txns.advance_past(wal.max_txn_id());
            ctl.wal = wal;
            ctl.wal.set_obs(Arc::clone(&db.obs));
        }
        db.obs.events.record_span(
            "recovery",
            format!(
                "replayed {wal_records} WAL record(s), truncated {} torn byte(s)",
                local.recovery_truncated_bytes
            ),
            sw,
        );
        db.stats.record(&local);
        Ok(db)
    }

    /// Opens a paged database rooted at `path`: committed rows live in a
    /// checksummed page file behind a buffer pool, so the dataset is no
    /// longer bounded by what the WAL can replay. Three sibling files are
    /// used: `{path}.wal`, `{path}.pages` and `{path}.journal` (the
    /// doublewrite journal that makes page writes atomic). Commits fsync on
    /// every commit ([`DurabilityPolicy::Always`]).
    ///
    /// Paged storage is opt-in: [`Database::new`] remains purely in-memory
    /// and its execution path is untouched. See the crate-level "Paged
    /// storage" docs for the recovery contract.
    pub fn open_paged(path: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::open_paged_with(path, DurabilityPolicy::Always, PagedConfig::default())
    }

    /// As [`Database::open_paged`], with an explicit fsync policy and
    /// page-store configuration.
    pub fn open_paged_with(
        path: impl AsRef<std::path::Path>,
        policy: DurabilityPolicy,
        config: PagedConfig,
    ) -> Result<Self> {
        let base = path.as_ref().as_os_str().to_os_string();
        let mut wal_path = base.clone();
        wal_path.push(".wal");
        let mut pages_path = base.clone();
        pages_path.push(".pages");
        let mut journal_path = base;
        journal_path.push(".journal");
        Self::open_paged_with_devices(
            Box::new(FsDevice::open(wal_path)?),
            Box::new(FsBlockDevice::open(pages_path)?),
            Box::new(FsDevice::open(journal_path)?),
            policy,
            config,
        )
    }

    /// Opens a paged database over arbitrary devices — the seam crash tests
    /// use to run real page-aware recovery against deterministic in-memory
    /// devices ([`crate::MemDevice`] / [`crate::MemBlockDevice`]).
    ///
    /// Recovery order: the WAL segment is decoded (torn tail truncated),
    /// the page store replays any pending doublewrite journal and verifies
    /// checksums, and then one of two paths runs:
    ///
    /// * **Page file authoritative** (the normal paged reopen): the heaps
    ///   are loaded from pages and only the committed WAL suffix past the
    ///   last checkpoint is replayed on top — recovery cost is proportional
    ///   to the suffix, not the dataset.
    /// * **WAL authoritative** (fresh page file, or a legacy log whose last
    ///   checkpoint still carries full rows): the catalog is rebuilt from
    ///   the WAL exactly as [`Database::open_with_device`] would, and the
    ///   page file is (re)seeded from it.
    pub fn open_paged_with_devices(
        wal_device: Box<dyn LogDevice>,
        page_device: Box<dyn BlockDevice>,
        journal_device: Box<dyn LogDevice>,
        policy: DurabilityPolicy,
        config: PagedConfig,
    ) -> Result<Self> {
        config.validate()?;
        let sw = Stopwatch::start();
        let failpoints = Arc::new(Failpoints::new());
        let mut local = OpStats::default();
        let mut wal = Wal::open_device(wal_device, policy, Arc::clone(&failpoints), &mut local)?;
        let store = PageStore::open(
            page_device,
            journal_device,
            Arc::clone(&failpoints),
            config.page_size,
        )?;
        let fresh = store.page_count() <= 1; // only the meta page
        let mut engine = PagedEngine::new(BufferPool::new(store, config.pool_pages));

        // A legacy log (pre-paged, or a `open_durable` WAL being upgraded)
        // carries full rows in its last checkpoint; such a log is the
        // authority and the page file is rebuilt from it. Paged-mode
        // checkpoints carry schemas only.
        let legacy_checkpoint = wal
            .records()
            .filter_map(|(_, r)| match r {
                LogRecord::Checkpoint { snapshot } => {
                    Some(snapshot.iter().any(|s| !s.rows.is_empty()))
                }
                _ => None,
            })
            .last()
            .unwrap_or(false);

        let catalog = if fresh || legacy_checkpoint {
            let catalog = wal.recover()?;
            if !fresh {
                engine.clear_all(&mut wal, &mut local)?;
            }
            let mut scratch = OpStats::default();
            for (name, table) in &catalog {
                engine.create_table(name);
                for r in table.scan(Snapshot::latest(), &mut scratch) {
                    engine.upsert(name, r.id, r.row, &mut wal, &mut local)?;
                }
            }
            catalog
        } else {
            let loaded = engine.load(&mut wal, &mut local)?;
            Self::paged_recover(&mut wal, loaded, &mut engine, &mut local)?
        };

        let db = Database {
            failpoints,
            ..Database::default()
        };
        *db.catalog.write() = catalog;
        let wal_records = wal.len();
        {
            let mut ctl = db.ctl.lock();
            ctl.txns.advance_past(wal.max_txn_id());
            ctl.wal = wal;
            ctl.wal.set_obs(Arc::clone(&db.obs));
            ctl.paged = Some(engine);
        }
        db.obs.events.record_span(
            "recovery",
            format!(
                "paged recovery: {wal_records} retained WAL record(s), {} page read(s)",
                local.pages_read
            ),
            sw,
        );
        db.stats.record(&local);
        Ok(db)
    }

    /// Page-aware recovery: rebuilds the catalog from the last checkpoint's
    /// schemas plus the rows loaded from the page file, then replays the
    /// committed WAL suffix into both the catalog and the page heaps.
    ///
    /// The replay is idempotent on both sides (the page file may already
    /// hold any prefix of the suffix's effects — evictions flush pages
    /// independently of checkpoints), so re-applying an already-applied
    /// change is harmless and the end state is exactly the committed prefix.
    fn paged_recover(
        wal: &mut Wal,
        mut loaded: std::collections::BTreeMap<String, Vec<(RowId, Row)>>,
        engine: &mut PagedEngine,
        local: &mut OpStats,
    ) -> Result<Catalog> {
        // Pass 1 over the retained log: the committed set, the last
        // checkpoint's schemas, and the record suffix past that checkpoint.
        // Cloned out so the replay below can borrow the WAL mutably (page
        // write-backs flush it first).
        let mut committed = std::collections::HashSet::new();
        let mut schemas: Vec<Schema> = Vec::new();
        let mut suffix: Vec<LogRecord> = Vec::new();
        for (_, rec) in wal.records() {
            match rec {
                LogRecord::Commit { txn } => {
                    committed.insert(*txn);
                    suffix.push(rec.clone());
                }
                LogRecord::Checkpoint { snapshot } => {
                    schemas = snapshot.iter().map(|s| s.schema.clone()).collect();
                    suffix.clear();
                }
                _ => suffix.push(rec.clone()),
            }
        }

        let mut scratch = OpStats::default();
        let mut tables: Catalog = Catalog::new();
        for schema in schemas {
            let name = schema.name.clone();
            let mut table = Table::new(schema)?;
            engine.create_table(&name);
            if let Some(rows) = loaded.remove(&name) {
                for (id, row) in rows {
                    table.insert_with_id(id, row, &mut scratch)?;
                }
            }
            tables.insert(name, table);
        }
        for rec in &suffix {
            let Some(txn) = rec.txn() else { continue };
            if !committed.contains(&txn) {
                continue;
            }
            Self::paged_redo(rec, &mut tables, &mut loaded, engine, wal, local, &mut scratch)?;
        }
        // Page tables with no schema anywhere in the log were dropped after
        // their last flush: release their pages.
        for name in loaded.keys().cloned().collect::<Vec<_>>() {
            if !tables.contains_key(&name) {
                engine.drop_table(&name, wal, local)?;
            }
        }
        Ok(tables)
    }

    /// Replays one committed suffix record into the catalog and the page
    /// heaps, idempotently (see [`Database::paged_recover`]).
    #[allow(clippy::too_many_arguments)]
    fn paged_redo(
        rec: &LogRecord,
        tables: &mut Catalog,
        loaded: &mut std::collections::BTreeMap<String, Vec<(RowId, Row)>>,
        engine: &mut PagedEngine,
        wal: &mut Wal,
        local: &mut OpStats,
        scratch: &mut OpStats,
    ) -> Result<()> {
        match rec {
            LogRecord::CreateTable { schema, .. } => {
                let name = schema.name.clone();
                engine.create_table(&name);
                let mut table = Table::new(schema.clone())?;
                // The table may have been created (and flushed) after the
                // checkpoint: adopt whatever rows its pages already held.
                if let Some(rows) = loaded.remove(&name) {
                    for (id, row) in rows {
                        table.insert_with_id(id, row, scratch)?;
                    }
                }
                tables.insert(name, table);
            }
            LogRecord::DropTable { table, .. } => {
                tables.remove(table);
                loaded.remove(table);
                engine.drop_table(table, wal, local)?;
            }
            LogRecord::Insert {
                table, row_id, row, ..
            } => {
                let t = tables
                    .get_mut(table)
                    .ok_or_else(|| Error::Wal(format!("insert into unknown table {table}")))?;
                t.restore(*row_id, row.clone())?;
                engine.upsert(table, *row_id, row, wal, local)?;
            }
            LogRecord::Update {
                table,
                row_id,
                after,
                ..
            } => {
                let t = tables
                    .get_mut(table)
                    .ok_or_else(|| Error::Wal(format!("update of unknown table {table}")))?;
                t.restore(*row_id, after.clone())?;
                engine.upsert(table, *row_id, after, wal, local)?;
            }
            LogRecord::Delete { table, row_id, .. } => {
                if let Some(t) = tables.get_mut(table) {
                    if t.get(*row_id).is_some() {
                        t.remove_physical(*row_id, scratch)?;
                    }
                }
                engine.remove(table, *row_id, wal, local)?;
            }
            LogRecord::Batch { changes, .. } => {
                for change in changes {
                    Self::paged_redo(change, tables, loaded, engine, wal, local, scratch)?;
                }
            }
            LogRecord::Begin { .. }
            | LogRecord::Commit { .. }
            | LogRecord::Abort { .. }
            | LogRecord::Checkpoint { .. } => {}
        }
        Ok(())
    }

    /// Reconstructs a database from a write-ahead log, as after a crash.
    pub fn recover_from(wal: Wal) -> Result<Self> {
        let sw = Stopwatch::start();
        let catalog = wal.recover()?;
        let db = Database::new();
        *db.catalog.write() = catalog;
        let wal_records = wal.len();
        {
            let mut ctl = db.ctl.lock();
            ctl.wal = wal;
            ctl.wal.set_obs(Arc::clone(&db.obs));
        }
        db.obs.events.record_span(
            "recovery",
            format!("replayed {wal_records} WAL record(s)"),
            sw,
        );
        Ok(db)
    }

    /// Returns a copy of the current write-ahead log (what a crash would find
    /// on disk). Used by recovery tests and failure-injection experiments.
    /// The copy is always in-memory: it never owns the durable device.
    pub fn snapshot_wal(&self) -> Wal {
        self.ctl.lock().wal.clone()
    }

    // --- durability -----------------------------------------------------------

    /// True when this database mirrors its WAL onto a durable [`LogDevice`].
    pub fn is_durable(&self) -> bool {
        self.ctl.lock().wal.is_durable()
    }

    /// Forces everything appended to the durable log onto stable storage,
    /// regardless of the [`DurabilityPolicy`]. A no-op for in-memory
    /// databases. Fails with [`Error::Io`] if the log writer is poisoned.
    pub fn flush_log(&self) -> Result<()> {
        let mut local = OpStats::default();
        let result = self.ctl.lock().wal.flush(&mut local);
        self.stats.record(&local);
        result
    }

    /// The bytes a crash right now would leave on the durable log device —
    /// the post-mortem view crash tests reopen from ([`Error::Wal`] for
    /// in-memory databases). Unsynced appends are excluded for the
    /// in-memory device model; call [`Database::flush_log`] first to get
    /// the full log.
    pub fn durable_log_bytes(&self) -> Result<Vec<u8>> {
        self.ctl.lock().wal.durable_contents()
    }

    /// The fault-injection registry for this database's durable IO path.
    /// Arm named points ([`crate::io::points`]) to inject short writes, torn
    /// writes, fsync errors or crashes; see [`crate::io::failpoint`].
    pub fn failpoints(&self) -> &Arc<Failpoints> {
        &self.failpoints
    }

    /// True when this database stores committed rows in a page file
    /// (opened through [`Database::open_paged`] and friends).
    pub fn is_paged(&self) -> bool {
        self.ctl.lock().paged.is_some()
    }

    /// The bytes a crash right now would leave in the page file — the
    /// post-mortem view paged crash tests reopen from. [`Error::Wal`] for
    /// databases without a page store.
    pub fn durable_page_bytes(&self) -> Result<Vec<u8>> {
        match self.ctl.lock().paged.as_mut() {
            Some(p) => p.pool().store().durable_page_bytes(),
            None => Err(Error::Wal("database has no page store".into())),
        }
    }

    /// The bytes a crash right now would leave in the doublewrite journal
    /// (empty outside a page-write window). [`Error::Wal`] for databases
    /// without a page store.
    pub fn durable_journal_bytes(&self) -> Result<Vec<u8>> {
        match self.ctl.lock().paged.as_mut() {
            Some(p) => p.pool().store().durable_journal_bytes(),
            None => Err(Error::Wal("database has no page store".into())),
        }
    }

    /// Cumulative operation statistics.
    pub fn stats(&self) -> OpStats {
        self.stats.snapshot()
    }

    /// The *current* horizon lag: how far the transaction-id high watermark
    /// has advanced past the oldest live snapshot — the version backlog one
    /// long-lived (possibly abandoned) transaction pins against vacuum.
    /// Zero when nothing pins the horizon. [`OpStats::horizon_lag`] is this
    /// value's high-water gauge.
    pub fn horizon_lag(&self) -> u64 {
        Self::horizon_lag_of(&self.ctl.lock())
    }

    /// Names of all tables in the catalog.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.read().keys().cloned().collect()
    }

    /// Number of rows in `table`, or an error if it does not exist.
    pub fn table_len(&self, table: &str) -> Result<usize> {
        self.catalog
            .read()
            .get(&table.to_ascii_lowercase())
            .map(Table::len)
            .ok_or_else(|| Error::not_found(format!("table {table}")))
    }

    /// Approximate resident size of all tables, in bytes.
    pub fn approx_size(&self) -> usize {
        self.catalog.read().values().map(Table::approx_size).sum()
    }

    /// Number of records currently retained in the write-ahead log.
    pub fn wal_len(&self) -> usize {
        self.ctl.lock().wal.len()
    }

    /// Number of transactions committed so far.
    pub fn committed_txns(&self) -> u64 {
        self.ctl.lock().txns.committed_count()
    }

    // --- transaction control -------------------------------------------------

    /// Begins an explicit transaction, stamping it with the MVCC snapshot
    /// all its reads will resolve against. No WAL record is written yet:
    /// the `Begin` record is appended lazily with the transaction's first
    /// logged change, so read-only transactions never touch the log.
    pub fn begin(&self) -> TxnId {
        let mut local = OpStats::default();
        let id = self.begin_local(&mut local);
        self.stats.record(&local);
        id
    }

    /// [`Database::begin`] counting into a caller-owned [`OpStats`] delta
    /// instead of merging immediately — autocommit writes use this so one
    /// delta (and one shared-stats merge) spans begin through commit.
    fn begin_local(&self, local: &mut OpStats) -> TxnId {
        let mut ctl = self.ctl.lock();
        let id = ctl.txns.begin();
        local.snapshots_taken += 1;
        local.horizon_lag = local.horizon_lag.max(Self::horizon_lag_of(&ctl));
        id
    }

    /// How far the transaction-id high watermark has advanced past the
    /// oldest live snapshot — the version backlog a long-lived (possibly
    /// abandoned) transaction pins. Zero when no snapshot is live.
    fn horizon_lag_of(ctl: &Control) -> u64 {
        let horizon = ctl.txns.snapshot_horizon();
        if horizon == u64::MAX {
            0
        } else {
            ctl.txns.high_watermark().saturating_sub(horizon)
        }
    }

    /// Commits an explicit transaction and releases its locks. Transactions
    /// that logged no changes append no Commit record.
    ///
    /// On a durable database the Commit record is forced to disk according
    /// to the [`DurabilityPolicy`] before this returns. An [`Error::Io`]
    /// here means the commit was **not** acknowledged as durable: the log
    /// writer is poisoned (an earlier write failed, or this commit's fsync
    /// did) and recovery from the on-disk log may not include this
    /// transaction. The in-memory state keeps the commit and stays readable,
    /// but every further commit fails the same way until the database is
    /// reopened from disk.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let mut local = OpStats::default();
        let synced = self.commit_local(txn, &mut local);
        self.stats.record(&local);
        synced
    }

    /// [`Database::commit`] counting into a caller-owned [`OpStats`] delta.
    /// Commits that logged changes record their WAL-append-to-fsync span in
    /// the `txn.commit` latency histogram.
    fn commit_local(&self, txn: TxnId, local: &mut OpStats) -> Result<()> {
        let synced;
        {
            let mut ctl = self.ctl.lock();
            let state = ctl.txns.finish_commit(txn)?;
            synced = if state.wal_begun {
                let sw = Stopwatch::start();
                // Split borrow: applying the commit to the page heaps may
                // evict frames, whose write-back must flush this same WAL
                // first (WAL-before-data).
                let c = &mut *ctl;
                c.wal.append(LogRecord::Commit { txn }, local);
                let forced = match c.paged.as_mut() {
                    Some(p) => p.apply_commit(txn, &mut c.wal, local),
                    None => Ok(()),
                }
                .and_then(|_| c.wal.commit_sync(local));
                self.obs.histograms.commit.record(sw.elapsed_nanos());
                forced
            } else {
                if let Some(p) = ctl.paged.as_mut() {
                    p.discard(txn);
                }
                // Read-only: nothing was logged, nothing needs forcing.
                Ok(())
            };
            // Locks are released even when the sync failed — the engine
            // stays usable for reads and rollbacks.
            ctl.locks.release_all(txn);
            local.horizon_lag = local.horizon_lag.max(Self::horizon_lag_of(&ctl));
        }
        local.commits += 1;
        synced
    }

    /// Rolls back an explicit transaction, undoing its changes.
    ///
    /// Undo is **version-aware**: the aborting transaction's versions are
    /// removed from the chains physically and the versions they superseded
    /// are re-opened, so aborted writes are never observable by any snapshot
    /// — visibility checks therefore never need a commit-status lookup.
    pub fn rollback(&self, txn: TxnId) -> Result<()> {
        let mut local = OpStats::default();
        let result = self.rollback_impl(txn, None, &mut local).map(|_| ());
        self.stats.record(&local);
        result
    }

    /// Aborts every transaction idle (no statement executed through it) for
    /// at least `idle_for`, releasing its locks, undoing its versions and
    /// appending its WAL `Abort` record — the reaper that keeps an abandoned
    /// client from pinning the vacuum horizon or blocking checkpoints
    /// forever. Returns the number of transactions reaped (counted in
    /// [`OpStats::txns_reaped`]).
    ///
    /// Idleness is re-validated under the rollback guards, so a transaction
    /// that executes a statement between the scan and the abort survives.
    /// A reaped transaction's next operation fails with the same typed
    /// inactive-transaction error a double rollback would produce.
    pub fn reap_idle(&self, idle_for: Duration) -> usize {
        let victims = self.ctl.lock().txns.idle_txns(idle_for);
        let mut local = OpStats::default();
        let mut reaped = 0usize;
        for txn in victims {
            // Ok(false)/Err: still active after re-validation, or finished.
            if let Ok(true) = self.rollback_impl(txn, Some(idle_for), &mut local) {
                reaped += 1;
            }
        }
        if reaped > 0 {
            local.txns_reaped = reaped as u64;
            local.horizon_lag = Self::horizon_lag_of(&self.ctl.lock());
        }
        self.stats.record(&local);
        reaped
    }

    /// Shared rollback machinery. With `only_if_idle` set the abort happens
    /// only when the transaction is still active *and* has been idle that
    /// long, checked under the guards (the reaper path); returns whether the
    /// rollback was performed.
    fn rollback_impl(
        &self,
        txn: TxnId,
        only_if_idle: Option<Duration>,
        local: &mut OpStats,
    ) -> Result<bool> {
        {
            let mut catalog = self.catalog.write();
            let mut ctl = self.ctl.lock();
            if let Some(idle_for) = only_if_idle {
                match ctl.txns.get_active(txn) {
                    Ok(state) if state.last_activity.elapsed() < idle_for => return Ok(false),
                    Err(_) => return Ok(false),
                    Ok(_) => {}
                }
            }
            let state = ctl.txns.finish_abort(txn)?;
            // Undo in reverse order.
            for undo in state.undo.iter().rev() {
                match undo {
                    UndoRecord::Insert { table, row_id } => {
                        if let Some(t) = catalog.get_mut(table) {
                            t.undo_insert(*row_id);
                        }
                    }
                    UndoRecord::Delete { table, row_id, .. } => {
                        if let Some(t) = catalog.get_mut(table) {
                            t.undo_delete(*row_id, txn);
                        }
                    }
                    UndoRecord::Update { table, row_id, .. } => {
                        if let Some(t) = catalog.get_mut(table) {
                            t.undo_update(*row_id, txn);
                        }
                    }
                    UndoRecord::CreateTable { table } => {
                        catalog.remove(table);
                    }
                }
            }
            if state.wal_begun {
                ctl.wal.append(LogRecord::Abort { txn }, local);
            }
            if let Some(p) = ctl.paged.as_mut() {
                p.discard(txn);
            }
            ctl.locks.release_all(txn);
        }
        local.aborts += 1;
        Ok(true)
    }

    // --- statement preparation and the statement cache -----------------------

    /// Parses `sql` through the statement cache: a hit returns the shared
    /// parsed AST without re-lexing, a miss parses outside every lock and
    /// caches the result. Counted in `cache_hits` / `cache_misses`, and in
    /// `statements_parsed` only on a miss.
    pub(crate) fn cached_parse(&self, sql: &str) -> Result<ParsedStmt> {
        if let Some(hit) = self.stmt_cache.lock().get(sql) {
            self.stats.record(&OpStats {
                cache_hits: 1,
                ..Default::default()
            });
            return Ok(hit);
        }
        self.stats.record(&OpStats {
            cache_misses: 1,
            statements_parsed: 1,
            ..Default::default()
        });
        // Parse outside the lock; concurrent sessions keep executing.
        let stmt = Arc::new(parse(sql)?);
        let params = stmt.param_count();
        let profile = Arc::new(StmtProfile::new(Arc::from(sql), StmtKind::of(&stmt)));
        let plan = Arc::new(PlanCell::default());
        self.stmt_cache.lock().insert(
            sql.to_string(),
            Arc::clone(&stmt),
            params,
            Arc::clone(&profile),
            Arc::clone(&plan),
        );
        Ok((stmt, params, profile, plan))
    }

    /// Prepares a statement for repeated execution. The SQL may contain `?`
    /// placeholders, bound positionally by `execute_prepared` /
    /// `query_prepared`. Preparation itself goes through the statement
    /// cache, so re-preparing the same text is cheap.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let (stmt, params, profile, plan) = self.cached_parse(sql)?;
        Ok(Prepared { stmt, params, profile, plan })
    }

    /// Snapshots the execution profile of every statement currently in the
    /// statement cache — the rows of the `rel_statements` system table,
    /// unsorted. Bounded by the cache capacity; an evicted entry's profile
    /// disappears with it (a re-prepare starts fresh).
    pub fn statement_profiles(&self) -> Vec<StmtProfileSnapshot> {
        self.stmt_cache.lock().profiles()
    }

    /// Changes the capacity of the statement cache (default 256 entries),
    /// evicting least-recently-used entries as needed. Zero disables caching.
    pub fn set_statement_cache_capacity(&self, capacity: usize) {
        self.stmt_cache.lock().resize(capacity);
    }

    // --- resource governance --------------------------------------------------

    /// Sets the database-wide default bound on how long a write statement
    /// waits for a conflicted table lock before failing with a retryable
    /// lock-wait [`Error::Timeout`]. `Duration::ZERO` (the initial value)
    /// fails fast with [`Error::LockConflict`] instead of waiting. A
    /// statement's [`Governance::lock_wait`] overrides this default.
    pub fn set_lock_wait_timeout(&self, timeout: Duration) {
        *self.lock_wait.lock() = timeout;
    }

    /// The current database-wide default lock-wait bound
    /// (see [`Database::set_lock_wait_timeout`]).
    pub fn lock_wait_timeout(&self) -> Duration {
        *self.lock_wait.lock()
    }

    // --- observability --------------------------------------------------------

    /// The engine's observability state: latency histograms, the slow-query
    /// ring and the event ring. Readable at any time without pausing writers;
    /// the same data is served as SQL through the `rel_*` system tables.
    pub fn obs(&self) -> &Observability {
        &self.obs
    }

    /// Arms the slow-query log: statements at or over `threshold` are
    /// captured into the `rel_slow_queries` ring with a wait breakdown.
    /// `Some(Duration::ZERO)` captures every statement; `None` (the initial
    /// state) disarms the log, leaving already-captured entries in place.
    /// While disarmed the per-statement cost is one relaxed load.
    pub fn set_slow_query_threshold(&self, threshold: Option<Duration>) {
        self.obs.slow_log.set_threshold(threshold);
    }

    /// The armed slow-query threshold, or `None` while disarmed.
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        self.obs.slow_log.threshold()
    }

    // --- statement execution -------------------------------------------------

    /// Parses and executes one statement in autocommit mode.
    ///
    /// Repeated executions of the same SQL text reuse the cached parse.
    /// Statements with `?` placeholders must go through [`Database::prepare`].
    pub fn execute(&self, sql: &str) -> Result<ExecResult> {
        self.execute_governed(sql, &Governance::NONE)
    }

    /// As [`Database::execute`], under the per-statement limits declared by
    /// `gov` (deadline, cancellation token, row/byte budgets, lock-wait
    /// bound); see [`Governance`].
    pub fn execute_governed(&self, sql: &str, gov: &Governance) -> Result<ExecResult> {
        let (stmt, params, profile, plan) = self.cached_parse(sql)?;
        if params > 0 {
            return Err(Error::type_err(format!(
                "statement has {params} parameter(s); use prepare()/execute_prepared()"
            )));
        }
        self.execute_stmt_tracked(&stmt, &[], gov, Some(&profile), Some(&plan))
    }

    /// Parses and executes one statement inside an explicit transaction.
    pub fn execute_in(&self, txn: TxnId, sql: &str) -> Result<ExecResult> {
        self.execute_in_governed(txn, sql, &Governance::NONE)
    }

    /// As [`Database::execute_in`], under the limits declared by `gov`.
    pub fn execute_in_governed(
        &self,
        txn: TxnId,
        sql: &str,
        gov: &Governance,
    ) -> Result<ExecResult> {
        let (stmt, params, profile, plan) = self.cached_parse(sql)?;
        if params > 0 {
            return Err(Error::type_err(format!(
                "statement has {params} parameter(s); use prepare()/execute_prepared_in()"
            )));
        }
        self.execute_stmt_in_tracked(txn, &stmt, &[], gov, Some(&profile), Some(&plan))
    }

    /// Executes a prepared statement in autocommit mode with the given
    /// parameter values bound positionally to its `?` placeholders. The
    /// parameters flow through planning and evaluation as context — the
    /// cached AST is never cloned or rewritten.
    pub fn execute_prepared(&self, prepared: &Prepared, params: &[Value]) -> Result<ExecResult> {
        self.execute_prepared_governed(prepared, params, &Governance::NONE)
    }

    /// As [`Database::execute_prepared`], under the limits declared by `gov`.
    pub fn execute_prepared_governed(
        &self,
        prepared: &Prepared,
        params: &[Value],
        gov: &Governance,
    ) -> Result<ExecResult> {
        Self::check_arity(prepared, params)?;
        self.execute_stmt_tracked(
            &prepared.stmt,
            params,
            gov,
            Some(&prepared.profile),
            Some(&prepared.plan),
        )
    }

    /// Executes a prepared statement inside an explicit transaction.
    pub fn execute_prepared_in(
        &self,
        txn: TxnId,
        prepared: &Prepared,
        params: &[Value],
    ) -> Result<ExecResult> {
        self.execute_prepared_in_governed(txn, prepared, params, &Governance::NONE)
    }

    /// As [`Database::execute_prepared_in`], under the limits declared by
    /// `gov`.
    pub fn execute_prepared_in_governed(
        &self,
        txn: TxnId,
        prepared: &Prepared,
        params: &[Value],
        gov: &Governance,
    ) -> Result<ExecResult> {
        Self::check_arity(prepared, params)?;
        self.execute_stmt_in_tracked(
            txn,
            &prepared.stmt,
            params,
            gov,
            Some(&prepared.profile),
            Some(&prepared.plan),
        )
    }

    fn check_arity(prepared: &Prepared, params: &[Value]) -> Result<()> {
        if params.len() != prepared.params {
            return Err(Error::type_err(format!(
                "statement has {} parameter(s) but {} value(s) were bound",
                prepared.params,
                params.len()
            )));
        }
        Ok(())
    }

    /// Executes a prepared SELECT and returns its rows.
    pub fn query_prepared(&self, prepared: &Prepared, params: &[Value]) -> Result<QueryResult> {
        self.execute_prepared(prepared, params)?.query()
    }

    /// Executes an already-parsed statement in autocommit mode.
    ///
    /// SELECTs take a read-only fast path under the *shared* catalog guard:
    /// any number of autocommit reads execute in parallel, without opening a
    /// transaction, registering locks or appending WAL records. Each read
    /// takes a fresh MVCC snapshot and resolves row visibility against it,
    /// so it **never fails against in-flight writers** — it simply observes
    /// the most recently committed state.
    pub fn execute_stmt(&self, stmt: &Statement) -> Result<ExecResult> {
        self.execute_stmt_params_governed(stmt, &[], &Governance::NONE)
    }

    /// Executes an already-parsed statement in autocommit mode under the
    /// limits declared by `gov` — the entry point the wire server drives.
    pub fn execute_stmt_params_governed(
        &self,
        stmt: &Statement,
        params: &[Value],
        gov: &Governance,
    ) -> Result<ExecResult> {
        self.execute_stmt_tracked(stmt, params, gov, None, None)
    }

    /// The autocommit dispatcher: every statement is stopwatch-timed and
    /// lands one sample in its kind's latency histogram (plus the statement's
    /// profile, when it was prepared from SQL) via
    /// [`Observability::record_statement`].
    fn execute_stmt_tracked(
        &self,
        stmt: &Statement,
        params: &[Value],
        gov: &Governance,
        profile: Option<&Arc<StmtProfile>>,
        plan: Option<&PlanCell>,
    ) -> Result<ExecResult> {
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::type_err(
                "use begin()/commit()/rollback() or a Session for transaction control",
            )),
            Statement::Select(sel) => {
                // Snapshot-read fast path. The read guard is taken *before*
                // the snapshot: a writer that committed after the guard was
                // acquired is simply absent from the snapshot, and its
                // versions are filtered out by visibility.
                let sw = Stopwatch::start();
                let mut governor = Governor::arm(gov);
                let catalog = self.catalog.read();
                let snapshot = self.ctl.lock().txns.read_snapshot();
                let mut local = OpStats {
                    statements_executed: 1,
                    snapshots_taken: 1,
                    ..Default::default()
                };
                let result = self.run_select_planned(
                    &catalog,
                    sel,
                    params,
                    &snapshot,
                    &mut local,
                    &mut governor,
                    plan,
                );
                drop(catalog);
                if let Err(e) = &result {
                    Self::attribute_failure(&mut local, e);
                }
                let rows = result.as_ref().map_or(0, |q| q.rows.len() as u64);
                self.finish_statement(StmtKind::Select, sw, rows, profile, &mut local);
                Ok(ExecResult::Query(result?))
            }
            Statement::Explain { analyze, select } => {
                let sw = Stopwatch::start();
                let mut governor = Governor::arm(gov);
                let catalog = self.catalog.read();
                let snapshot = self.ctl.lock().txns.read_snapshot();
                let mut local = OpStats {
                    statements_executed: 1,
                    snapshots_taken: 1,
                    ..Default::default()
                };
                let result = self.run_explain(
                    &catalog,
                    *analyze,
                    select,
                    params,
                    &snapshot,
                    &mut local,
                    &mut governor,
                );
                drop(catalog);
                if let Err(e) = &result {
                    Self::attribute_failure(&mut local, e);
                }
                let rows = result.as_ref().map_or(0, |q| q.rows.len() as u64);
                self.finish_statement(StmtKind::Select, sw, rows, profile, &mut local);
                Ok(ExecResult::Query(result?))
            }
            Statement::Analyze(target) => {
                let sw = Stopwatch::start();
                let mut local = OpStats {
                    statements_executed: 1,
                    ..Default::default()
                };
                let result = self.run_analyze(target.as_deref(), &mut local);
                let rows = result.as_ref().map_or(0, |n| *n as u64);
                self.finish_statement(StmtKind::Ddl, sw, rows, profile, &mut local);
                result.map(ExecResult::Affected)
            }
            _ => {
                // Autocommit write: one statement-local delta spans begin
                // through commit, so the slow-query wait breakdown includes
                // the commit fsync and the shared stats merge happens once.
                let sw = Stopwatch::start();
                let mut local = OpStats::default();
                let txn = self.begin_local(&mut local);
                let result = match self.write_stmt_in(txn, stmt, params, gov, &mut local) {
                    Ok(result) => self.commit_local(txn, &mut local).map(|()| result),
                    Err(e) => {
                        // Roll back best-effort; surface the original error.
                        // A cancelled or over-budget autocommit write is
                        // therefore never partially applied.
                        let _ = self.rollback_impl(txn, None, &mut local);
                        Err(e)
                    }
                };
                if let Err(e) = &result {
                    Self::attribute_failure(&mut local, e);
                }
                let rows = result.as_ref().map_or(0, |r| r.affected() as u64);
                self.finish_statement(StmtKind::of(stmt), sw, rows, profile, &mut local);
                result
            }
        }
    }

    /// Finishes one timed statement: the histogram/profile/slow-log record,
    /// then the shared-stats merge. Every path that counts
    /// `statements_executed` funnels through exactly one call, so histogram
    /// sample totals and the counter agree once writers quiesce.
    #[inline]
    fn finish_statement(
        &self,
        kind: StmtKind,
        sw: Stopwatch,
        rows: u64,
        profile: Option<&Arc<StmtProfile>>,
        local: &mut OpStats,
    ) {
        let nanos = sw.elapsed_nanos();
        self.obs
            .record_statement(kind, nanos, rows, profile, WaitBreakdown::of(local), local);
        self.stats.record(local);
    }

    /// Runs one SELECT against the catalog, routing `rel_*` system-table
    /// names that no real table shadows to the observability layer: the
    /// current state is synthesized into throwaway tables and the ordinary
    /// select executor runs against those, so filters, projections, joins
    /// between system tables, ORDER BY, aggregates and LIMIT work unchanged.
    fn run_select(
        &self,
        catalog: &Catalog,
        sel: &SelectStmt,
        params: &[Value],
        snapshot: &Snapshot,
        local: &mut OpStats,
        governor: &mut Governor,
    ) -> Result<QueryResult> {
        let base = lower_name(&sel.table);
        if obs::is_system_table(&base) && !catalog.contains_key(base.as_ref()) {
            let virt = self.system_catalog(catalog, sel)?;
            return execute_select_with(&virt, sel, params, snapshot, local, governor);
        }
        execute_select_with(catalog, sel, params, snapshot, local, governor)
    }

    /// As [`Database::run_select`], consulting the statement's plan cache
    /// cell for joined selects: the cached plan (and any still-valid
    /// hash-join build sides) is reused across executions of the same
    /// prepared handle / SQL text, and refreshed builds are written back.
    ///
    /// Single-table selects never touch the cell — their access-path choice
    /// is allocation-free, so caching would only add a lock to the
    /// point-select hot path. A slot whose generation falls behind
    /// [`Database::plan_gen`] (DDL, `ANALYZE`, planner-knob change) is
    /// replanned from scratch.
    #[allow(clippy::too_many_arguments)]
    fn run_select_planned(
        &self,
        catalog: &Catalog,
        sel: &SelectStmt,
        params: &[Value],
        snapshot: &Snapshot,
        local: &mut OpStats,
        governor: &mut Governor,
        plan: Option<&PlanCell>,
    ) -> Result<QueryResult> {
        let base = lower_name(&sel.table);
        if obs::is_system_table(&base) && !catalog.contains_key(base.as_ref()) {
            let virt = self.system_catalog(catalog, sel)?;
            return execute_select_with(&virt, sel, params, snapshot, local, governor);
        }
        let no_reorder = self.planner_no_reorder.load(Ordering::Relaxed);
        let force_scan = self.planner_force_scan.load(Ordering::Relaxed);
        let cell = match plan {
            Some(cell) if !sel.joins.is_empty() => cell,
            _ => {
                let opts = ExecOptions {
                    no_reorder,
                    force_scan,
                    ..Default::default()
                };
                return execute_select_opts(catalog, sel, params, snapshot, local, governor, opts);
            }
        };
        let gen = self.plan_gen.load(Ordering::Acquire);
        let (shared, mut builds) = {
            let mut slot = cell.lock();
            if slot.gen != gen || slot.plan.is_none() {
                let planned = plan_select(catalog, sel, !no_reorder)?;
                local.plans_built += 1;
                let steps = planned.steps.len();
                *slot = PlanSlot {
                    gen,
                    plan: Some(Arc::new(planned)),
                    builds: vec![None; steps],
                };
            } else {
                local.plan_cache_hits += 1;
            }
            let plan = Arc::clone(slot.plan.as_ref().expect("slot was just filled"));
            // Clone the build slots (refcount bumps) so the cell is not
            // locked during execution; refreshed builds are merged back
            // below unless the slot was invalidated meanwhile.
            (plan, slot.builds.clone())
        };
        let opts = ExecOptions {
            plan: Some(&shared),
            builds: Some(&mut builds),
            no_reorder,
            force_scan,
            ..Default::default()
        };
        let result = execute_select_opts(catalog, sel, params, snapshot, local, governor, opts)?;
        let mut slot = cell.lock();
        if slot.gen == gen && slot.plan.as_ref().is_some_and(|p| Arc::ptr_eq(p, &shared)) {
            slot.builds = builds;
        }
        Ok(result)
    }

    /// Runs `EXPLAIN [ANALYZE] <select>`: plans the SELECT with the live
    /// planner knobs and renders the plan tree as ordinary result rows.
    /// With `analyze` the query is executed first and each operator is
    /// annotated with its actual row count and wall time.
    #[allow(clippy::too_many_arguments)]
    fn run_explain(
        &self,
        catalog: &Catalog,
        analyze: bool,
        sel: &SelectStmt,
        params: &[Value],
        snapshot: &Snapshot,
        local: &mut OpStats,
        governor: &mut Governor,
    ) -> Result<QueryResult> {
        let base = lower_name(&sel.table);
        let virt;
        let cat = if obs::is_system_table(&base) && !catalog.contains_key(base.as_ref()) {
            virt = self.system_catalog(catalog, sel)?;
            &virt
        } else {
            catalog
        };
        let no_reorder = self.planner_no_reorder.load(Ordering::Relaxed);
        let planned = plan_select(cat, sel, !no_reorder)?;
        local.plans_built += 1;
        if !analyze {
            return Ok(plan::explain_result(&planned, sel, None));
        }
        let mut prof = PlanProfile::default();
        let opts = ExecOptions {
            plan: Some(&planned),
            profile: Some(&mut prof),
            no_reorder,
            force_scan: self.planner_force_scan.load(Ordering::Relaxed),
            ..Default::default()
        };
        execute_select_opts(cat, sel, params, snapshot, local, governor, opts)?;
        Ok(plan::explain_result(&planned, sel, Some(&prof)))
    }

    /// Runs `ANALYZE [table]`: scans the named table (or every table) at the
    /// latest committed state and installs fresh planner statistics on the
    /// catalog entry. Statistics are planner advice, not data: they are
    /// never WAL-logged (a reopened database starts unanalyzed), survive
    /// transaction rollback, and go stale silently until the next `ANALYZE`.
    /// Returns the number of tables analyzed.
    fn run_analyze(&self, target: Option<&str>, local: &mut OpStats) -> Result<usize> {
        let mut catalog = self.catalog.write();
        let names: Vec<String> = match target {
            Some(t) => {
                let name = lower_name(t).into_owned();
                if !catalog.contains_key(&name) {
                    return Err(Error::not_found(format!("table {t}")));
                }
                vec![name]
            }
            None => catalog.keys().cloned().collect(),
        };
        for name in &names {
            let table = catalog.get_mut(name).expect("existence checked above");
            let fresh = plan::analyze_table(table);
            table.set_table_stats(fresh);
            local.tables_analyzed += 1;
        }
        drop(catalog);
        // Cached plans were chosen against the old statistics; force a
        // replan on next execution.
        self.plan_gen.fetch_add(1, Ordering::Release);
        Ok(names.len())
    }

    /// Collects planner statistics for `table`, or for every table when
    /// `None` — the programmatic form of SQL `ANALYZE [table]`. Returns the
    /// number of tables analyzed.
    pub fn analyze(&self, table: Option<&str>) -> Result<usize> {
        let stmt = Statement::Analyze(table.map(str::to_string));
        Ok(self.execute_stmt(&stmt)?.affected())
    }

    /// Bench/test knob: enables or disables cost-based join reordering
    /// (enabled by default). Disabling keeps joins in syntactic order —
    /// the pre-planner behaviour — for baseline comparisons. Invalidates
    /// cached plans.
    pub fn set_join_reorder(&self, enabled: bool) {
        self.planner_no_reorder.store(!enabled, Ordering::Relaxed);
        self.plan_gen.fetch_add(1, Ordering::Release);
    }

    /// Bench/test knob: forces full scans of the base table, ignoring the
    /// cost-based access-path choice. Invalidates cached plans.
    pub fn set_force_scan(&self, force: bool) {
        self.planner_force_scan.store(force, Ordering::Relaxed);
        self.plan_gen.fetch_add(1, Ordering::Release);
    }

    /// Synthesizes the system tables a SELECT references into a throwaway
    /// catalog. System tables join only with each other — a join against a
    /// real table from a system-table SELECT is rejected, since the real
    /// catalog is not copied into the virtual one.
    fn system_catalog(&self, catalog: &Catalog, sel: &SelectStmt) -> Result<Catalog> {
        let mut virt = Catalog::new();
        self.add_system_table(catalog, &mut virt, lower_name(&sel.table).as_ref())?;
        for join in &sel.joins {
            self.add_system_table(catalog, &mut virt, lower_name(&join.table).as_ref())?;
        }
        Ok(virt)
    }

    /// Builds one named system table from the live observability state (or,
    /// for `rel_table_stats`, from the real catalog's planner statistics).
    fn add_system_table(&self, catalog: &Catalog, virt: &mut Catalog, name: &str) -> Result<()> {
        if virt.contains_key(name) {
            return Ok(());
        }
        let table = match name {
            "rel_stats" => systables::stats_table(&self.stats.snapshot()),
            "rel_histograms" => systables::histograms_table(&self.obs.histograms),
            "rel_statements" => systables::statements_table(self.statement_profiles()),
            "rel_slow_queries" => systables::slow_queries_table(self.obs.slow_log.entries()),
            "rel_events" => systables::events_table(self.obs.events.entries()),
            "rel_table_stats" => {
                systables::table_stats_table(catalog.iter().map(|(n, t)| (n.as_str(), t)))
            }
            other => {
                return Err(Error::type_err(format!(
                    "system tables join only with other system tables, not {other}"
                )))
            }
        };
        virt.insert(name.to_string(), table);
        Ok(())
    }

    /// Executes an already-parsed statement inside an explicit transaction.
    /// SELECTs run under the shared catalog guard against the transaction's
    /// begin-time snapshot (repeatable reads, no locks); mutating statements
    /// hold the write guard.
    pub fn execute_stmt_in(&self, txn: TxnId, stmt: &Statement) -> Result<ExecResult> {
        self.execute_stmt_in_params_governed(txn, stmt, &[], &Governance::NONE)
    }

    /// Executes an already-parsed statement inside an explicit transaction
    /// under the limits declared by `gov`. Every statement refreshes the
    /// transaction's idle clock (see [`Database::reap_idle`]).
    pub fn execute_stmt_in_params_governed(
        &self,
        txn: TxnId,
        stmt: &Statement,
        params: &[Value],
        gov: &Governance,
    ) -> Result<ExecResult> {
        self.execute_stmt_in_tracked(txn, stmt, params, gov, None, None)
    }

    /// The in-transaction dispatcher; see [`Database::execute_stmt_tracked`]
    /// for what "tracked" adds.
    fn execute_stmt_in_tracked(
        &self,
        txn: TxnId,
        stmt: &Statement,
        params: &[Value],
        gov: &Governance,
        profile: Option<&Arc<StmtProfile>>,
        plan: Option<&PlanCell>,
    ) -> Result<ExecResult> {
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::type_err(
                "nested transaction control is not supported",
            )),
            Statement::Select(sel) => {
                let sw = Stopwatch::start();
                let mut governor = Governor::arm(gov);
                let catalog = self.catalog.read();
                let snapshot = {
                    let mut ctl = self.ctl.lock();
                    ctl.txns.touch(txn);
                    // An inactive transaction fails here, before anything is
                    // counted: the statement never executed.
                    ctl.txns.snapshot_of(txn)?
                };
                let mut local = OpStats {
                    statements_executed: 1,
                    ..Default::default()
                };
                let result = self.run_select_planned(
                    &catalog,
                    sel,
                    params,
                    &snapshot,
                    &mut local,
                    &mut governor,
                    plan,
                );
                drop(catalog);
                if let Err(e) = &result {
                    Self::attribute_failure(&mut local, e);
                }
                let rows = result.as_ref().map_or(0, |q| q.rows.len() as u64);
                self.finish_statement(StmtKind::Select, sw, rows, profile, &mut local);
                Ok(ExecResult::Query(result?))
            }
            Statement::Explain { analyze, select } => {
                let sw = Stopwatch::start();
                let mut governor = Governor::arm(gov);
                let catalog = self.catalog.read();
                let snapshot = {
                    let mut ctl = self.ctl.lock();
                    ctl.txns.touch(txn);
                    ctl.txns.snapshot_of(txn)?
                };
                let mut local = OpStats {
                    statements_executed: 1,
                    ..Default::default()
                };
                let result = self.run_explain(
                    &catalog,
                    *analyze,
                    select,
                    params,
                    &snapshot,
                    &mut local,
                    &mut governor,
                );
                drop(catalog);
                if let Err(e) = &result {
                    Self::attribute_failure(&mut local, e);
                }
                let rows = result.as_ref().map_or(0, |q| q.rows.len() as u64);
                self.finish_statement(StmtKind::Select, sw, rows, profile, &mut local);
                Ok(ExecResult::Query(result?))
            }
            Statement::Analyze(target) => {
                // ANALYZE refreshes shared planner statistics in place; it is
                // deliberately non-transactional (never WAL-logged, not
                // undone by rollback) and ignores the transaction's snapshot,
                // sampling the latest committed state like its autocommit
                // form.
                let sw = Stopwatch::start();
                self.ctl.lock().txns.touch(txn);
                let mut local = OpStats {
                    statements_executed: 1,
                    ..Default::default()
                };
                let result = self.run_analyze(target.as_deref(), &mut local);
                let rows = result.as_ref().map_or(0, |n| *n as u64);
                self.finish_statement(StmtKind::Ddl, sw, rows, profile, &mut local);
                result.map(ExecResult::Affected)
            }
            _ => {
                let sw = Stopwatch::start();
                let mut local = OpStats::default();
                let result = self.write_stmt_in(txn, stmt, params, gov, &mut local);
                if let Err(e) = &result {
                    Self::attribute_failure(&mut local, e);
                }
                let rows = result.as_ref().map_or(0, |r| r.affected() as u64);
                self.finish_statement(StmtKind::of(stmt), sw, rows, profile, &mut local);
                result
            }
        }
    }

    /// The body of the in-transaction write arm: bounded lock wait, the
    /// write itself under both guards, the WAL append and the targeted
    /// vacuum. Counts into `local` but neither attributes failures nor
    /// merges stats — the caller owns the single
    /// [`Database::finish_statement`] per statement.
    fn write_stmt_in(
        &self,
        txn: TxnId,
        stmt: &Statement,
        params: &[Value],
        gov: &Governance,
        local: &mut OpStats,
    ) -> Result<ExecResult> {
        let mut governor = Governor::arm(gov);
        local.statements_executed += 1;
        // Bounded lock wait happens *before* the catalog write guard
        // is taken, so a waiting writer never blocks readers or the
        // holder's own commit/rollback.
        if let Some(name) = Self::write_target(stmt) {
            let wait = gov.lock_wait.unwrap_or_else(|| self.lock_wait_timeout());
            self.wait_for_table_lock(txn, &name, wait, &mut governor, local)?;
        }
        let mut catalog = self.catalog.write();
        let mut ctl = self.ctl.lock();
        ctl.txns.touch(txn);
        let mut log = Vec::new();
        let result = Self::run_write(
            &mut catalog,
            &mut ctl,
            txn,
            stmt,
            params,
            local,
            &mut log,
            &mut governor,
        );
        // Changes that were applied before an error are still logged:
        // their undo records exist and rollback discards them, so the
        // WAL must carry them in case the transaction commits anyway.
        let flushed = Self::append_changes(&mut ctl, txn, log, false, local);
        self.vacuum_if_bloated(&mut catalog, &ctl, stmt, local);
        drop(ctl);
        drop(catalog);
        let result = result?;
        flushed?;
        if matches!(
            stmt,
            Statement::CreateTable(_) | Statement::CreateIndex { .. } | Statement::DropTable(_)
        ) {
            // Schema changed under cached plans; force a replan on next
            // execution. (A later rollback of this DDL leaves the bump in
            // place — harmlessly conservative.)
            self.plan_gen.fetch_add(1, Ordering::Release);
        }
        Ok(result)
    }

    /// Counts a governance failure in the right statement-level counter.
    fn attribute_failure(stats: &mut OpStats, e: &Error) {
        match e {
            Error::Timeout {
                kind: TimeoutKind::Statement,
                ..
            } => stats.statements_timed_out += 1,
            Error::ResourceExhausted(_) => stats.statements_over_budget += 1,
            _ => {}
        }
    }

    /// The (lowercased) table a mutating statement will lock, used to
    /// pre-acquire its lock with a bounded wait.
    fn write_target(stmt: &Statement) -> Option<String> {
        match stmt {
            Statement::Insert(ins) => Some(ins.table.to_ascii_lowercase()),
            Statement::Update(upd) => Some(upd.table.to_ascii_lowercase()),
            Statement::Delete(del) => Some(del.table.to_ascii_lowercase()),
            Statement::CreateTable(schema) => Some(schema.name.clone()),
            Statement::CreateIndex { table, .. } => Some(table.to_ascii_lowercase()),
            Statement::DropTable(table) => Some(table.to_ascii_lowercase()),
            Statement::Begin
            | Statement::Commit
            | Statement::Rollback
            | Statement::Select(_)
            | Statement::Analyze(_)
            | Statement::Explain { .. } => None,
        }
    }

    /// Acquires `table`'s exclusive lock for `txn`, waiting up to `wait` for
    /// a conflicting writer to finish. With a zero `wait` a conflict fails
    /// fast with [`Error::LockConflict`] (the pre-governance behaviour);
    /// otherwise the lock table is re-probed every [`LOCK_WAIT_POLL`] until
    /// the bound expires into a retryable lock-wait [`Error::Timeout`]. The
    /// statement deadline and cancellation token are honoured between
    /// probes, and no engine lock is held while sleeping.
    fn wait_for_table_lock(
        &self,
        txn: TxnId,
        table: &str,
        wait: Duration,
        governor: &mut Governor,
        stats: &mut OpStats,
    ) -> Result<()> {
        let mut first_conflict = true;
        let start = Instant::now();
        let deadline = start + wait;
        loop {
            let conflict = match self.ctl.lock().locks.acquire(txn, table, LockMode::Exclusive) {
                Ok(()) => {
                    // Only contended acquisitions reach a second clock read
                    // and the lock-wait histogram; the uncontended path is
                    // exactly as before.
                    if !first_conflict {
                        self.note_lock_wait(start, stats);
                    }
                    return Ok(());
                }
                Err(e @ Error::LockConflict(_)) => e,
                Err(e) => return Err(e),
            };
            if wait.is_zero() {
                return Err(conflict);
            }
            if first_conflict {
                first_conflict = false;
                stats.lock_waits += 1;
            }
            // The statement deadline / cancellation token caps the wait too.
            governor.check_now()?;
            if Instant::now() >= deadline {
                stats.lock_wait_timeouts += 1;
                self.note_lock_wait(start, stats);
                return Err(Error::lock_wait_timeout(format!(
                    "table {table} still write-locked after {wait:?}"
                )));
            }
            std::thread::sleep(LOCK_WAIT_POLL);
        }
    }

    /// Accounts one finished (or timed-out) contended lock wait.
    fn note_lock_wait(&self, start: Instant, stats: &mut OpStats) {
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stats.lock_wait_nanos += nanos;
        self.obs.histograms.lock_wait.record(nanos);
    }

    /// Targeted vacuum: when the table a write statement touched has
    /// accumulated more than [`VACUUM_DEAD_THRESHOLD`] dead versions, prune
    /// the ones no live snapshot can still observe. Runs under the already
    /// held catalog write guard; the horizon comes from the live snapshots.
    fn vacuum_if_bloated(
        &self,
        catalog: &mut Catalog,
        ctl: &Control,
        stmt: &Statement,
        stats: &mut OpStats,
    ) {
        let table = match stmt {
            Statement::Insert(ins) => &ins.table,
            Statement::Update(upd) => &upd.table,
            Statement::Delete(del) => &del.table,
            _ => return,
        };
        let Some(t) = catalog.get_mut(lower_name(table).as_ref()) else {
            return;
        };
        if t.dead_versions() > VACUUM_DEAD_THRESHOLD {
            // A long-lived snapshot can pin the whole backlog; only sweep
            // when the horizon has advanced far enough to reclaim something.
            let horizon = ctl.txns.snapshot_horizon();
            if t.vacuum_would_prune(horizon) {
                let sw = Stopwatch::start();
                t.vacuum(horizon, stats);
                self.obs.histograms.vacuum.record(sw.elapsed_nanos());
            }
        }
    }

    /// Appends buffered row-level change records to the WAL: the
    /// transaction's lazy `Begin` first if needed, then either each record
    /// individually (single-statement execution, preserving the one record
    /// per change cadence) or everything wrapped into one
    /// [`LogRecord::Batch`] append (batched execution — one WAL append for N
    /// bindings).
    fn append_changes(
        ctl: &mut Control,
        txn: TxnId,
        log: Vec<LogRecord>,
        as_batch: bool,
        stats: &mut OpStats,
    ) -> Result<()> {
        if log.is_empty() {
            return Ok(());
        }
        // The paged engine buffers every change until commit (no-steal):
        // captured here, in the single funnel through which row-level
        // records enter the WAL, applied by `commit`, dropped by rollback.
        if let Some(paged) = &mut ctl.paged {
            paged.capture(txn, &log);
        }
        Self::wal_begin_if_needed(ctl, txn, stats)?;
        if as_batch && log.len() > 1 {
            ctl.wal.append(LogRecord::Batch { txn, changes: log }, stats);
        } else {
            for rec in log {
                ctl.wal.append(rec, stats);
            }
        }
        Ok(())
    }

    // --- batched execution ----------------------------------------------------

    /// Executes a prepared DML statement once per parameter binding, taking
    /// the catalog write guard and the control mutex **once** for the whole
    /// batch and appending **one** WAL record for all of its changes.
    ///
    /// On success the stored data is identical to calling
    /// [`execute_prepared`](Database::execute_prepared) in a loop with the
    /// same bindings — same rows affected, same constraint checks — with
    /// only the locking and logging cadence differing. On error the batch is
    /// **stricter** than the loop: the whole batch runs as one implicit
    /// transaction and rolls back entirely, whereas a loop of autocommit
    /// statements would leave the bindings before the failure committed.
    /// Returns the total number of rows affected.
    pub fn execute_batch(&self, prepared: &Prepared, bindings: &[Vec<Value>]) -> Result<usize> {
        self.execute_batch_governed(prepared, bindings, &Governance::NONE)
    }

    /// As [`Database::execute_batch`], under the limits declared by `gov`:
    /// the whole batch is one governed unit — its deadline, cancellation
    /// token and budgets span all bindings.
    pub fn execute_batch_governed(
        &self,
        prepared: &Prepared,
        bindings: &[Vec<Value>],
        gov: &Governance,
    ) -> Result<usize> {
        let txn = self.begin();
        match self.execute_batch_in_governed(txn, prepared, bindings, gov) {
            Ok(n) => {
                self.commit(txn)?;
                Ok(n)
            }
            Err(e) => {
                let _ = self.rollback(txn);
                Err(e)
            }
        }
    }

    /// As [`Database::execute_batch`], inside an explicit transaction. On a
    /// mid-batch error the bindings already applied stay pending (their undo
    /// records exist), exactly as a failed statement in a loop would; the
    /// caller decides whether to roll back.
    pub fn execute_batch_in(
        &self,
        txn: TxnId,
        prepared: &Prepared,
        bindings: &[Vec<Value>],
    ) -> Result<usize> {
        self.execute_batch_in_governed(txn, prepared, bindings, &Governance::NONE)
    }

    /// As [`Database::execute_batch_in`], under the limits declared by `gov`.
    pub fn execute_batch_in_governed(
        &self,
        txn: TxnId,
        prepared: &Prepared,
        bindings: &[Vec<Value>],
        gov: &Governance,
    ) -> Result<usize> {
        match prepared.stmt.as_ref() {
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {}
            _ => {
                return Err(Error::type_err(
                    "execute_batch expects an INSERT, UPDATE or DELETE statement",
                ))
            }
        }
        for binding in bindings {
            Self::check_arity(prepared, binding)?;
        }
        let mut governor = Governor::arm(gov);
        let mut local = OpStats::default();
        if let Some(name) = Self::write_target(&prepared.stmt) {
            let wait = gov.lock_wait.unwrap_or_else(|| self.lock_wait_timeout());
            if let Err(e) = self.wait_for_table_lock(txn, &name, wait, &mut governor, &mut local) {
                Self::attribute_failure(&mut local, &e);
                self.stats.record(&local);
                return Err(e);
            }
        }
        let kind = StmtKind::of(&prepared.stmt);
        let mut catalog = self.catalog.write();
        let mut ctl = self.ctl.lock();
        ctl.txns.touch(txn);
        let mut log = Vec::new();
        let mut affected = 0usize;
        let mut failed = None;
        for binding in bindings {
            let sw = Stopwatch::start();
            local.statements_executed += 1;
            let before = WaitBreakdown::of(&local);
            // Deadline/cancellation boundary between bindings, in addition
            // to the per-row ticks inside run_write.
            let result = governor.check_now().and_then(|()| {
                Self::run_write(
                    &mut catalog,
                    &mut ctl,
                    txn,
                    &prepared.stmt,
                    binding,
                    &mut local,
                    &mut log,
                    &mut governor,
                )
            });
            // Each binding counts as one statement, so each lands one
            // histogram/profile sample. The binding sees only its own wait
            // delta; the batch's single WAL append and the commit land in
            // the wal.fsync / txn.commit histograms, not here.
            let rows = result.as_ref().map_or(0, |r| r.affected() as u64);
            self.obs.record_statement(
                kind,
                sw.elapsed_nanos(),
                rows,
                Some(&prepared.profile),
                WaitBreakdown::of(&local).delta_since(&before),
                &mut local,
            );
            match result {
                Ok(result) => affected += result.affected(),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let flushed = Self::append_changes(&mut ctl, txn, log, true, &mut local);
        self.vacuum_if_bloated(&mut catalog, &ctl, &prepared.stmt, &mut local);
        drop(ctl);
        drop(catalog);
        if let Some(e) = &failed {
            Self::attribute_failure(&mut local, e);
        }
        self.stats.record(&local);
        if let Some(e) = failed {
            return Err(e);
        }
        flushed?;
        Ok(affected)
    }

    /// Executes a prepared SELECT once per parameter binding under a
    /// **single** shared catalog guard and a single MVCC snapshot — the
    /// pipelined form of a point-select loop. Results are returned in
    /// binding order. Like every read, the batch never conflicts with
    /// in-flight writers.
    pub fn query_batch(
        &self,
        prepared: &Prepared,
        bindings: &[Vec<Value>],
    ) -> Result<Vec<QueryResult>> {
        self.query_batch_governed(prepared, bindings, &Governance::NONE)
    }

    /// As [`Database::query_batch`], under the limits declared by `gov`: the
    /// whole batch is one governed unit — deadline, cancellation and
    /// row/byte budgets span all bindings' results combined.
    pub fn query_batch_governed(
        &self,
        prepared: &Prepared,
        bindings: &[Vec<Value>],
        gov: &Governance,
    ) -> Result<Vec<QueryResult>> {
        let sel = Self::batch_select(prepared, bindings)?;
        let mut governor = Governor::arm(gov);
        let catalog = self.catalog.read();
        let snapshot = self.ctl.lock().txns.read_snapshot();
        self.run_query_batch(
            &catalog,
            sel,
            bindings,
            &snapshot,
            true,
            &mut governor,
            &prepared.profile,
        )
    }

    /// As [`Database::query_batch`], inside an explicit transaction: the
    /// whole batch reads the transaction's begin-time snapshot.
    pub fn query_batch_in(
        &self,
        txn: TxnId,
        prepared: &Prepared,
        bindings: &[Vec<Value>],
    ) -> Result<Vec<QueryResult>> {
        self.query_batch_in_governed(txn, prepared, bindings, &Governance::NONE)
    }

    /// As [`Database::query_batch_in`], under the limits declared by `gov`.
    pub fn query_batch_in_governed(
        &self,
        txn: TxnId,
        prepared: &Prepared,
        bindings: &[Vec<Value>],
        gov: &Governance,
    ) -> Result<Vec<QueryResult>> {
        let sel = Self::batch_select(prepared, bindings)?;
        let mut governor = Governor::arm(gov);
        let catalog = self.catalog.read();
        let snapshot = {
            let mut ctl = self.ctl.lock();
            ctl.txns.touch(txn);
            ctl.txns.snapshot_of(txn)?
        };
        self.run_query_batch(
            &catalog,
            sel,
            bindings,
            &snapshot,
            false,
            &mut governor,
            &prepared.profile,
        )
    }

    /// Validates a batch SELECT's shape and arities.
    fn batch_select<'a>(prepared: &'a Prepared, bindings: &[Vec<Value>]) -> Result<&'a SelectStmt> {
        let Statement::Select(sel) = prepared.stmt.as_ref() else {
            return Err(Error::type_err("query_batch expects a SELECT statement"));
        };
        for binding in bindings {
            Self::check_arity(prepared, binding)?;
        }
        Ok(sel)
    }

    /// Runs the per-binding SELECTs of a batch under an already-held guard
    /// against one shared snapshot.
    #[allow(clippy::too_many_arguments)]
    fn run_query_batch(
        &self,
        catalog: &Catalog,
        sel: &SelectStmt,
        bindings: &[Vec<Value>],
        snapshot: &Snapshot,
        fresh_snapshot: bool,
        governor: &mut Governor,
        profile: &Arc<StmtProfile>,
    ) -> Result<Vec<QueryResult>> {
        let mut local = OpStats {
            snapshots_taken: u64::from(fresh_snapshot),
            ..Default::default()
        };
        let mut out = Vec::with_capacity(bindings.len());
        let mut failed = None;
        for binding in bindings {
            let sw = Stopwatch::start();
            local.statements_executed += 1;
            let result = governor
                .check_now()
                .and_then(|()| self.run_select(catalog, sel, binding, snapshot, &mut local, governor));
            let rows = result.as_ref().map_or(0, |q| q.rows.len() as u64);
            self.obs.record_statement(
                StmtKind::Select,
                sw.elapsed_nanos(),
                rows,
                Some(profile),
                WaitBreakdown::default(),
                &mut local,
            );
            match result {
                Ok(q) => out.push(q),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = &failed {
            Self::attribute_failure(&mut local, e);
        }
        self.stats.record(&local);
        match failed {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Executes a mutating statement while holding the catalog write guard
    /// and the control mutex. Row-level change records are pushed onto `log`
    /// rather than appended to the WAL directly, so the caller controls the
    /// append cadence (per record for single statements, one batch record for
    /// batched execution).
    #[allow(clippy::too_many_arguments)]
    fn run_write(
        catalog: &mut Catalog,
        ctl: &mut Control,
        txn: TxnId,
        stmt: &Statement,
        params: &[Value],
        stats: &mut OpStats,
        log: &mut Vec<LogRecord>,
        gov: &mut Governor,
    ) -> Result<ExecResult> {
        ctl.txns.get_active(txn)?;
        match stmt {
            Statement::CreateTable(schema) => {
                let name = schema.name.clone();
                ctl.locks.acquire(txn, &name, LockMode::Exclusive)?;
                if catalog.contains_key(&name) {
                    return Err(Error::AlreadyExists(format!("table {name}")));
                }
                let table = Table::new(schema.clone())?;
                catalog.insert(name.clone(), table);
                log.push(LogRecord::CreateTable {
                    txn,
                    schema: schema.clone(),
                });
                ctl.txns
                    .push_undo(txn, UndoRecord::CreateTable { table: name })?;
                Ok(ExecResult::Ack)
            }
            Statement::CreateIndex {
                table,
                column,
                unique,
            } => {
                let name = table.to_ascii_lowercase();
                ctl.locks.acquire(txn, &name, LockMode::Exclusive)?;
                let t = catalog
                    .get_mut(&name)
                    .ok_or_else(|| Error::not_found(format!("table {table}")))?;
                let prefix = if *unique { "uidx" } else { "idx" };
                let idx_name = format!("{prefix}_{name}_{column}");
                if t.schema.indexes.iter().any(|i| i.name == idx_name) {
                    return Err(Error::AlreadyExists(format!("index {idx_name}")));
                }
                // Built in place over every retained version, so snapshot
                // readers probing the new index still see their rows.
                t.add_index(
                    IndexDef {
                        name: idx_name,
                        column: column.to_ascii_lowercase(),
                        unique: *unique,
                    },
                    stats,
                )?;
                Ok(ExecResult::Ack)
            }
            Statement::DropTable(table) => {
                let name = table.to_ascii_lowercase();
                ctl.locks.acquire(txn, &name, LockMode::Exclusive)?;
                catalog
                    .remove(&name)
                    .ok_or_else(|| Error::not_found(format!("table {table}")))?;
                log.push(LogRecord::DropTable { txn, table: name });
                Ok(ExecResult::Ack)
            }
            Statement::Insert(ins) => {
                Self::run_insert(catalog, ctl, txn, ins, params, stats, log, gov)
            }
            Statement::Update(upd) => {
                Self::run_update(catalog, ctl, txn, upd, params, stats, log, gov)
            }
            Statement::Delete(del) => {
                Self::run_delete(catalog, ctl, txn, del, params, stats, log, gov)
            }
            Statement::Begin
            | Statement::Commit
            | Statement::Rollback
            | Statement::Select(_)
            | Statement::Analyze(_)
            | Statement::Explain { .. } => {
                unreachable!("handled by execute_stmt_in_params")
            }
        }
    }

    /// Convenience wrapper: executes a SELECT and returns its rows.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.execute(sql)?.query()
    }

    /// Convenience wrapper: a SELECT under the limits declared by `gov`.
    pub fn query_governed(&self, sql: &str, gov: &Governance) -> Result<QueryResult> {
        self.execute_governed(sql, gov)?.query()
    }

    /// Executes a prepared SELECT under the limits declared by `gov`.
    pub fn query_prepared_governed(
        &self,
        prepared: &Prepared,
        params: &[Value],
        gov: &Governance,
    ) -> Result<QueryResult> {
        self.execute_prepared_governed(prepared, params, gov)?.query()
    }

    /// Convenience wrapper: runs `SELECT COUNT(*) FROM table [WHERE ...]`
    /// expressed programmatically and returns the count, observed through a
    /// fresh read snapshot (committed state only).
    pub fn count(&self, table: &str, filter: Option<&Expr>) -> Result<i64> {
        let catalog = self.catalog.read();
        let snapshot = self.ctl.lock().txns.read_snapshot();
        let t = catalog
            .get(&table.to_ascii_lowercase())
            .ok_or_else(|| Error::not_found(format!("table {table}")))?;
        let mut stats = OpStats::default();
        Ok(
            matching_row_ids_with(t, filter, &[], &snapshot, &mut stats, &mut Governor::disarmed())?
                .len() as i64,
        )
    }

    /// Appends the transaction's `Begin` record if this is its first logged
    /// change (Begin records are lazy; see [`Database::begin`]).
    fn wal_begin_if_needed(ctl: &mut Control, txn: TxnId, stats: &mut OpStats) -> Result<()> {
        let state = ctl.txns.get_active(txn)?;
        if !state.wal_begun {
            state.wal_begun = true;
            ctl.wal.append(LogRecord::Begin { txn }, stats);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_insert(
        catalog: &mut Catalog,
        ctl: &mut Control,
        txn: TxnId,
        ins: &InsertStmt,
        params: &[Value],
        stats: &mut OpStats,
        log: &mut Vec<LogRecord>,
        gov: &mut Governor,
    ) -> Result<ExecResult> {
        let name = ins.table.to_ascii_lowercase();
        ctl.locks.acquire(txn, &name, LockMode::Exclusive)?;
        let table = catalog
            .get_mut(&name)
            .ok_or_else(|| Error::not_found(format!("table {}", ins.table)))?;
        let schema = table.schema.clone();
        let empty_schema = Schema::new("values", Vec::new());
        let empty_row = Row::default();
        let mut inserted = 0usize;
        for row_exprs in &ins.rows {
            gov.tick()?;
            // Evaluate the literal expressions for this VALUES row.
            let mut provided = Vec::with_capacity(row_exprs.len());
            for e in row_exprs {
                provided.push(e.eval_with(&empty_schema, &empty_row, params)?);
            }
            // Rearrange into schema order.
            let values: Vec<Value> = if ins.columns.is_empty() {
                if provided.len() != schema.arity() {
                    return Err(Error::type_err(format!(
                        "table {} expects {} values, got {}",
                        schema.name,
                        schema.arity(),
                        provided.len()
                    )));
                }
                provided
            } else {
                if provided.len() != ins.columns.len() {
                    return Err(Error::type_err(format!(
                        "INSERT column list has {} entries but {} values were given",
                        ins.columns.len(),
                        provided.len()
                    )));
                }
                let mut values = vec![Value::Null; schema.arity()];
                for (col, value) in ins.columns.iter().zip(provided) {
                    let idx = schema.column_index(col)?;
                    values[idx] = value;
                }
                values
            };
            let row_id = table.insert(values, txn, stats)?;
            let row = table.get(row_id).cloned().ok_or_else(|| {
                Error::internal("row missing immediately after insert")
            })?;
            log.push(LogRecord::Insert {
                txn,
                table: name.clone(),
                row_id,
                row,
            });
            ctl.txns
                .push_undo(txn, UndoRecord::Insert { table: name.clone(), row_id })?;
            inserted += 1;
        }
        Ok(ExecResult::Affected(inserted))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_update(
        catalog: &mut Catalog,
        ctl: &mut Control,
        txn: TxnId,
        upd: &UpdateStmt,
        params: &[Value],
        stats: &mut OpStats,
        log: &mut Vec<LogRecord>,
        gov: &mut Governor,
    ) -> Result<ExecResult> {
        let name = upd.table.to_ascii_lowercase();
        ctl.locks.acquire(txn, &name, LockMode::Exclusive)?;
        let table = catalog
            .get_mut(&name)
            .ok_or_else(|| Error::not_found(format!("table {}", upd.table)))?;
        let ids =
            matching_row_ids_with(table, upd.filter.as_ref(), params, Snapshot::latest(), stats, gov)?;
        let schema = table.schema.clone();
        let mut affected = 0usize;
        for id in ids {
            gov.tick()?;
            let current = table
                .get(id)
                .cloned()
                .ok_or_else(|| Error::internal("matched row vanished during update"))?;
            let mut assignments = Vec::with_capacity(upd.assignments.len());
            for (col, expr) in &upd.assignments {
                let idx = schema.column_index(col)?;
                let value = expr.eval_with(&schema, &current, params)?;
                assignments.push((idx, value));
            }
            let (before, after) = table.update(id, &assignments, txn, stats)?;
            log.push(LogRecord::Update {
                txn,
                table: name.clone(),
                row_id: id,
                before: before.clone(),
                after,
            });
            ctl.txns.push_undo(
                txn,
                UndoRecord::Update {
                    table: name.clone(),
                    row_id: id,
                    before,
                },
            )?;
            affected += 1;
        }
        Ok(ExecResult::Affected(affected))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_delete(
        catalog: &mut Catalog,
        ctl: &mut Control,
        txn: TxnId,
        del: &DeleteStmt,
        params: &[Value],
        stats: &mut OpStats,
        log: &mut Vec<LogRecord>,
        gov: &mut Governor,
    ) -> Result<ExecResult> {
        let name = del.table.to_ascii_lowercase();
        ctl.locks.acquire(txn, &name, LockMode::Exclusive)?;
        let table = catalog
            .get_mut(&name)
            .ok_or_else(|| Error::not_found(format!("table {}", del.table)))?;
        let ids =
            matching_row_ids_with(table, del.filter.as_ref(), params, Snapshot::latest(), stats, gov)?;
        let mut affected = 0usize;
        for id in ids {
            gov.tick()?;
            let before = table.delete(id, txn, stats)?;
            log.push(LogRecord::Delete {
                txn,
                table: name.clone(),
                row_id: id,
                before: before.clone(),
            });
            ctl.txns.push_undo(
                txn,
                UndoRecord::Delete {
                    table: name.clone(),
                    row_id: id,
                    before,
                },
            )?;
            affected += 1;
        }
        Ok(ExecResult::Affected(affected))
    }

    // --- maintenance ----------------------------------------------------------

    /// Takes a checkpoint: snapshots every table into the log and truncates
    /// the records before it. Returns the number of bytes written. Runs under
    /// the shared catalog guard, so checkpoints do not block readers.
    ///
    /// A checkpoint while any transaction is active would snapshot its
    /// uncommitted changes and truncate the very records recovery needs to
    /// discard them, so it fails with a **retryable** [`Error::Busy`] until
    /// the engine is quiescent — distinguishable from a successful checkpoint
    /// of an empty log (`Ok(bytes)`), so callers retry instead of misreading
    /// "nothing to checkpoint".
    pub fn checkpoint(&self) -> Result<u64> {
        let sw = Stopwatch::start();
        let wal_bytes;
        {
            let catalog = self.catalog.read();
            let mut ctl = self.ctl.lock();
            let active = ctl.txns.active_count();
            if active > 0 {
                return Err(Error::busy(format!(
                    "checkpoint deferred: {active} active transaction(s)"
                )));
            }
            let mut scratch = OpStats::default();
            let paged = ctl.paged.is_some();
            // No transactions are active, so the latest state is exactly the
            // committed state: the snapshot carries one version per live row.
            // A paged database snapshots schemas only — the rows already live
            // in the page file, which `checkpoint_flush` below makes current.
            let snapshot: Vec<TableSnapshot> = catalog
                .values()
                .map(|t| TableSnapshot {
                    schema: t.schema.clone(),
                    rows: if paged {
                        Vec::new()
                    } else {
                        t.scan(Snapshot::latest(), &mut scratch)
                            .map(|r| (r.id, r.row.clone()))
                            .collect()
                    },
                })
                .collect();
            let mut local = OpStats::default();
            // On a durable log this rotates the segment (write the new one,
            // fsync, atomic rename) before the old records are discarded; a
            // failure leaves the old log intact and surfaces here. Paged
            // databases flush every dirty page *first*: once the old records
            // are gone, the page file is the only copy of the rows.
            let c = &mut *ctl;
            let rotated = match c.paged.as_mut() {
                Some(p) => p.checkpoint_flush(&mut c.wal, &mut local),
                None => Ok(()),
            }
            .and_then(|_| c.wal.checkpoint(snapshot, &mut local));
            wal_bytes = local.wal_bytes;
            drop(ctl);
            drop(catalog);
            self.stats.record(&local);
            rotated?;
        }
        // Checkpoints double as the engine's full vacuum pass: prune every
        // version no live snapshot can observe. This needs the write guard,
        // taken *after* the snapshot guard is released so readers were never
        // blocked while the snapshot was built.
        let pruned = self.vacuum_all();
        let nanos = sw.elapsed_nanos();
        self.obs.histograms.checkpoint.record(nanos);
        self.obs.events.record(
            "checkpoint",
            format!("wrote {wal_bytes} WAL byte(s), vacuum pruned {pruned} version(s)"),
            nanos,
        );
        Ok(wal_bytes)
    }

    /// Prunes dead row versions in every table, bounded by the oldest live
    /// snapshot (with none active, chains shrink to one version per live
    /// row). Returns the number of versions pruned. Called from
    /// [`Database::checkpoint`]; exposed for tests and manual maintenance.
    pub fn vacuum_all(&self) -> usize {
        let sw = Stopwatch::start();
        let mut catalog = self.catalog.write();
        let horizon = self.ctl.lock().txns.snapshot_horizon();
        let mut local = OpStats::default();
        let mut pruned = 0usize;
        let mut tables = 0usize;
        for table in catalog.values_mut() {
            pruned += table.vacuum(horizon, &mut local);
            tables += 1;
        }
        drop(catalog);
        self.stats.record(&local);
        let nanos = sw.elapsed_nanos();
        self.obs.histograms.vacuum.record(nanos);
        self.obs.events.record(
            "vacuum",
            format!("full sweep over {tables} table(s) pruned {pruned} version(s)"),
            nanos,
        );
        pruned
    }

    /// Total retained MVCC versions (including current ones) in `table`.
    /// With no writers in flight and after a vacuum this equals
    /// [`Database::table_len`]. Used by tests and monitoring.
    pub fn table_versions(&self, table: &str) -> Result<usize> {
        self.catalog
            .read()
            .get(&table.to_ascii_lowercase())
            .map(Table::total_versions)
            .ok_or_else(|| Error::not_found(format!("table {table}")))
    }

    /// Number of version chains in `table` retaining at least one dead
    /// version — exactly the chains the next vacuum pass will visit (the
    /// dirty-chain list; see [`Table::dirty_chain_count`]).
    pub fn table_dirty_chains(&self, table: &str) -> Result<usize> {
        self.catalog
            .read()
            .get(&table.to_ascii_lowercase())
            .map(Table::dirty_chain_count)
            .ok_or_else(|| Error::not_found(format!("table {table}")))
    }

    /// Length of the longest version chain in `table`.
    pub fn table_max_chain(&self, table: &str) -> Result<usize> {
        self.catalog
            .read()
            .get(&table.to_ascii_lowercase())
            .map(Table::max_chain_len)
            .ok_or_else(|| Error::not_found(format!("table {table}")))
    }

    /// Verifies heap/index consistency of every table. Used by tests.
    pub fn check_consistency(&self) -> Result<()> {
        let catalog = self.catalog.read();
        for table in catalog.values() {
            table.check_consistency()?;
        }
        Ok(())
    }

    // --- typed client surface -------------------------------------------------

    /// Opens a [`Session`](crate::Session) — the typed client surface
    /// (tuple-bound parameters, [`FromRow`](crate::FromRow) decoding, RAII
    /// transactions). Sessions are two words; open one per request.
    pub fn session(&self) -> crate::Session<'_> {
        crate::Session::new(self)
    }

    /// Begins an explicit transaction and returns the RAII
    /// [`Transaction`](crate::Transaction) guard: `commit()` consumes the
    /// guard, dropping it (including during a panic unwind) rolls back.
    pub fn transaction(&self) -> crate::Transaction<'_> {
        crate::Transaction::begin(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn setup() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime DOUBLE)",
        )
        .unwrap();
        db.execute("CREATE INDEX ON jobs (state)").unwrap();
        db.execute(
            "INSERT INTO jobs (job_id, owner, state, runtime) VALUES \
             (1, 'alice', 'idle', 60), (2, 'bob', 'idle', 120), (3, 'alice', 'running', 300)",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_crud() {
        let db = setup();
        assert_eq!(db.table_len("jobs").unwrap(), 3);

        let r = db.query("SELECT owner FROM jobs WHERE state = 'idle' ORDER BY job_id").unwrap();
        assert_eq!(r.len(), 2);

        let n = db
            .execute("UPDATE jobs SET state = 'running' WHERE job_id = 1")
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        let r = db.query("SELECT COUNT(*) AS n FROM jobs WHERE state = 'running'").unwrap();
        assert_eq!(r.scalar_int(), Some(2));

        let n = db.execute("DELETE FROM jobs WHERE owner = 'alice'").unwrap().affected();
        assert_eq!(n, 2);
        assert_eq!(db.table_len("jobs").unwrap(), 1);
        db.check_consistency().unwrap();
    }

    #[test]
    fn autocommit_rolls_back_failed_statements() {
        let db = setup();
        // Second row violates the primary key; the whole statement must not apply.
        let err = db.execute("INSERT INTO jobs (job_id, owner) VALUES (10, 'x'), (1, 'y')");
        assert!(err.is_err());
        assert_eq!(db.table_len("jobs").unwrap(), 3);
        assert_eq!(db.count("jobs", Some(&Expr::col_eq("job_id", 10))).unwrap(), 0);
        db.check_consistency().unwrap();
    }

    #[test]
    fn explicit_transactions_commit_and_rollback() {
        let db = setup();
        let txn = db.begin();
        db.execute_in(txn, "INSERT INTO jobs (job_id, owner, state) VALUES (4, 'carol', 'idle')")
            .unwrap();
        db.execute_in(txn, "UPDATE jobs SET state = 'held' WHERE job_id = 2").unwrap();
        db.execute_in(txn, "DELETE FROM jobs WHERE job_id = 3").unwrap();
        db.rollback(txn).unwrap();

        assert_eq!(db.table_len("jobs").unwrap(), 3);
        let r = db.query("SELECT state FROM jobs WHERE job_id = 2").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("idle".into())));

        let txn = db.begin();
        db.execute_in(txn, "INSERT INTO jobs (job_id, owner, state) VALUES (4, 'carol', 'idle')")
            .unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 4);
        db.check_consistency().unwrap();
    }

    #[test]
    fn readers_never_conflict_with_writers() {
        let db = setup();
        let t1 = db.begin();
        let t2 = db.begin();
        db.execute_in(t1, "UPDATE jobs SET state = 'held' WHERE job_id = 1").unwrap();

        // MVCC: a reader in another transaction succeeds against the
        // in-flight writer and sees the pre-update state.
        let r = db
            .execute_in(t2, "SELECT state FROM jobs WHERE job_id = 1")
            .unwrap()
            .query()
            .unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("idle".into())));
        // The autocommit fast path reads the committed state too.
        let r = db.query("SELECT state FROM jobs WHERE job_id = 1").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("idle".into())));
        // The writer itself sees its own uncommitted version.
        let r = db
            .execute_in(t1, "SELECT state FROM jobs WHERE job_id = 1")
            .unwrap()
            .query()
            .unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("held".into())));

        db.commit(t1).unwrap();
        // t2's snapshot predates t1's commit: repeatable reads.
        let r = db
            .execute_in(t2, "SELECT state FROM jobs WHERE job_id = 1")
            .unwrap()
            .query()
            .unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("idle".into())));
        db.commit(t2).unwrap();
        // A fresh autocommit read observes the committed update.
        let r = db.query("SELECT state FROM jobs WHERE job_id = 1").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("held".into())));
    }

    #[test]
    fn write_write_conflicts_are_still_reported() {
        let db = setup();
        let t1 = db.begin();
        let t2 = db.begin();
        db.execute_in(t1, "UPDATE jobs SET state = 'held' WHERE job_id = 1").unwrap();
        // A second writer on the same table fails fast and retryably.
        let err = db
            .execute_in(t2, "UPDATE jobs SET state = 'done' WHERE job_id = 2")
            .unwrap_err();
        assert!(err.is_retryable());
        db.commit(t1).unwrap();
        // After the first writer commits, the second proceeds.
        db.execute_in(t2, "UPDATE jobs SET state = 'done' WHERE job_id = 2").unwrap();
        db.commit(t2).unwrap();
    }

    #[test]
    fn range_access_paths_do_not_duplicate_updated_rows() {
        let db = setup();
        db.execute("CREATE INDEX ON jobs (runtime)").unwrap();
        // The update leaves the old runtime key's index entry behind for
        // snapshot readers; a range spanning both keys must still yield the
        // row exactly once.
        db.execute("UPDATE jobs SET runtime = 90 WHERE job_id = 1").unwrap();
        let r = db
            .query("SELECT job_id FROM jobs WHERE runtime >= 0 AND runtime <= 1000 ORDER BY job_id")
            .unwrap();
        assert_eq!(r.len(), 3, "each row exactly once through the range index");
        // Range-matched DML applies once per row (a duplicate id would
        // double-apply the expression / fail the delete).
        let n = db
            .execute("UPDATE jobs SET runtime = runtime + 1 WHERE runtime BETWEEN 0 AND 1000")
            .unwrap()
            .affected();
        assert_eq!(n, 3);
        let r = db.query("SELECT runtime FROM jobs WHERE job_id = 1").unwrap();
        assert_eq!(r.first_value("runtime"), Some(&Value::Double(91.0)));
        let n = db.execute("DELETE FROM jobs WHERE runtime >= 0").unwrap().affected();
        assert_eq!(n, 3);
        db.check_consistency().unwrap();
    }

    #[test]
    fn recovery_restores_committed_state() {
        let db = setup();
        db.execute("UPDATE jobs SET state = 'done' WHERE job_id = 3").unwrap();
        // An uncommitted transaction at crash time must disappear.
        let txn = db.begin();
        db.execute_in(txn, "DELETE FROM jobs").unwrap();

        let wal = db.snapshot_wal();
        let recovered = Database::recover_from(wal).unwrap();
        assert_eq!(recovered.table_len("jobs").unwrap(), 3);
        let r = recovered.query("SELECT state FROM jobs WHERE job_id = 3").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("done".into())));
        recovered.check_consistency().unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_preserves_recovery() {
        let db = setup();
        let before = db.wal_len();
        db.checkpoint().unwrap();
        assert!(db.wal_len() < before);
        db.execute("INSERT INTO jobs (job_id, owner) VALUES (9, 'zoe')").unwrap();
        let recovered = Database::recover_from(db.snapshot_wal()).unwrap();
        assert_eq!(recovered.table_len("jobs").unwrap(), 4);
        assert!(db.stats().checkpoints >= 1);
    }

    #[test]
    fn ddl_statements_and_errors() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        assert!(db.execute("CREATE TABLE t (a INT)").is_err());
        db.execute("DROP TABLE t").unwrap();
        assert!(db.execute("DROP TABLE t").is_err());
        assert!(db.execute("SELECT * FROM t").is_err());
        assert!(db.execute("BEGIN").is_err());
    }

    #[test]
    fn stats_accumulate() {
        let db = setup();
        let s1 = db.stats();
        db.query("SELECT * FROM jobs").unwrap();
        db.execute("UPDATE jobs SET runtime = runtime + 1 WHERE state = 'idle'").unwrap();
        let s2 = db.stats();
        let d = s2.delta_since(&s1);
        assert!(d.rows_read >= 3);
        assert_eq!(d.rows_updated, 2);
        assert!(d.statements_executed >= 2);
        assert!(d.wal_records >= 2);
    }

    #[test]
    fn prepared_statements_bind_parameters() {
        let db = setup();
        let q = db.prepare("SELECT owner FROM jobs WHERE job_id = ?").unwrap();
        assert_eq!(q.param_count(), 1);
        let r = db.query_prepared(&q, &[Value::Int(2)]).unwrap();
        assert_eq!(r.first_value("owner"), Some(&Value::Text("bob".into())));
        // Re-binding different values reuses the same parse.
        let r = db.query_prepared(&q, &[Value::Int(3)]).unwrap();
        assert_eq!(r.first_value("owner"), Some(&Value::Text("alice".into())));
        // Arity mismatches are reported.
        assert!(db.query_prepared(&q, &[]).is_err());
        assert!(db.query_prepared(&q, &[Value::Int(1), Value::Int(2)]).is_err());

        // DML with parameters, including SQL-hostile text bound verbatim.
        let upd = db
            .prepare("UPDATE jobs SET owner = ? WHERE job_id = ?")
            .unwrap();
        let n = db
            .execute_prepared(&upd, &[Value::Text("o'brien -- x".into()), Value::Int(1)])
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        let r = db.query("SELECT owner FROM jobs WHERE job_id = 1").unwrap();
        assert_eq!(r.first_value("owner"), Some(&Value::Text("o'brien -- x".into())));

        // NULL binds as SQL NULL.
        let upd = db.prepare("UPDATE jobs SET state = ? WHERE job_id = ?").unwrap();
        db.execute_prepared(&upd, &[Value::Null, Value::Int(2)]).unwrap();
        let r = db.query("SELECT COUNT(*) FROM jobs WHERE state IS NULL").unwrap();
        assert_eq!(r.scalar_int(), Some(1));
        db.check_consistency().unwrap();
    }

    #[test]
    fn plain_execute_rejects_placeholders() {
        let db = setup();
        assert!(db.execute("SELECT * FROM jobs WHERE job_id = ?").is_err());
        let txn = db.begin();
        assert!(db.execute_in(txn, "DELETE FROM jobs WHERE job_id = ?").is_err());
        db.rollback(txn).unwrap();
    }

    #[test]
    fn statement_cache_stops_reparsing_once_warm() {
        let db = setup();
        db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap(); // cold: parses
        let warm = db.stats();
        for _ in 0..10 {
            db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap();
        }
        let after = db.stats();
        assert_eq!(
            after.statements_parsed, warm.statements_parsed,
            "repeated identical SQL must not grow statements_parsed once the cache is warm"
        );
        assert_eq!(after.cache_hits, warm.cache_hits + 10);
        assert_eq!(after.cache_misses, warm.cache_misses);
    }

    #[test]
    fn statement_cache_evicts_least_recently_used() {
        let db = setup();
        db.set_statement_cache_capacity(2);
        db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap(); // A: miss
        db.query("SELECT * FROM jobs WHERE job_id = 2").unwrap(); // B: miss
        db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap(); // A: hit
        db.query("SELECT * FROM jobs WHERE job_id = 3").unwrap(); // C: miss, evicts B
        let s1 = db.stats();
        db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap(); // A still cached
        let s2 = db.stats();
        assert_eq!(s2.cache_hits, s1.cache_hits + 1);
        db.query("SELECT * FROM jobs WHERE job_id = 2").unwrap(); // B was evicted
        let s3 = db.stats();
        assert_eq!(s3.cache_misses, s2.cache_misses + 1);

        // Zero capacity disables caching entirely.
        db.set_statement_cache_capacity(0);
        let s4 = db.stats();
        db.query("SELECT * FROM jobs WHERE job_id = 3").unwrap();
        db.query("SELECT * FROM jobs WHERE job_id = 3").unwrap();
        let s5 = db.stats();
        assert_eq!(s5.cache_hits, s4.cache_hits);
        assert_eq!(s5.cache_misses, s4.cache_misses + 2);
    }

    #[test]
    fn prepared_statements_inside_transactions() {
        let db = setup();
        let ins = db
            .prepare("INSERT INTO jobs (job_id, owner, state) VALUES (?, ?, ?)")
            .unwrap();
        let txn = db.begin();
        db.execute_prepared_in(
            txn,
            &ins,
            &[Value::Int(10), Value::from("zoe"), Value::from("idle")],
        )
        .unwrap();
        db.rollback(txn).unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 3, "rollback undoes prepared insert");

        let txn = db.begin();
        db.execute_prepared_in(
            txn,
            &ins,
            &[Value::Int(10), Value::from("zoe"), Value::from("idle")],
        )
        .unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 4);
        db.check_consistency().unwrap();
    }

    #[test]
    fn unique_index_via_sql() {
        let db = Database::new();
        db.execute("CREATE TABLE m (id INT PRIMARY KEY, name TEXT)").unwrap();
        db.execute("CREATE UNIQUE INDEX ON m (name)").unwrap();
        db.execute("INSERT INTO m VALUES (1, 'node01')").unwrap();
        assert!(db.execute("INSERT INTO m VALUES (2, 'node01')").is_err());
        db.execute("INSERT INTO m VALUES (2, 'node02')").unwrap();
        assert_eq!(db.table_len("m").unwrap(), 2);
    }

    #[test]
    fn checkpoint_waits_out_active_transactions() {
        let db = setup();
        let txn = db.begin();
        db.execute_in(txn, "INSERT INTO jobs (job_id, owner) VALUES (8, 'eve')").unwrap();
        let wal_before = db.wal_len();
        // Checkpointing now would snapshot the uncommitted row and truncate
        // the records recovery needs to discard it; it must refuse with a
        // retryable busy error, not a silent "0 bytes written".
        let err = db.checkpoint().unwrap_err();
        assert!(matches!(err, Error::Busy(_)));
        assert!(err.is_retryable());
        assert_eq!(db.wal_len(), wal_before);
        db.rollback(txn).unwrap();

        // The rolled-back insert must not survive a checkpoint + recovery.
        assert!(db.checkpoint().unwrap() > 0);
        let recovered = Database::recover_from(db.snapshot_wal()).unwrap();
        assert_eq!(recovered.table_len("jobs").unwrap(), 3);
        assert_eq!(
            recovered.count("jobs", Some(&Expr::col_eq("job_id", 8))).unwrap(),
            0
        );
    }

    #[test]
    fn read_only_explicit_txns_never_touch_the_wal() {
        let db = setup();
        let before = db.wal_len();

        // A transaction that only reads appends neither Begin nor Commit.
        let txn = db.begin();
        db.execute_in(txn, "SELECT * FROM jobs").unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.wal_len(), before, "read-only commit must not touch the WAL");

        let txn = db.begin();
        db.execute_in(txn, "SELECT COUNT(*) FROM jobs").unwrap();
        db.rollback(txn).unwrap();
        assert_eq!(db.wal_len(), before, "read-only rollback must not touch the WAL");

        // A writing transaction appends Begin lazily, with its first change.
        let s1 = db.stats();
        let txn = db.begin();
        assert_eq!(db.wal_len(), before, "Begin is deferred until the first write");
        db.execute_in(txn, "UPDATE jobs SET state = 'held' WHERE job_id = 1").unwrap();
        db.commit(txn).unwrap();
        let d = db.stats().delta_since(&s1);
        assert_eq!(d.wal_records, 3, "Begin + Update + Commit");

        // Recovery honours the lazily-begun transaction.
        let recovered = Database::recover_from(db.snapshot_wal()).unwrap();
        let r = recovered.query("SELECT state FROM jobs WHERE job_id = 1").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("held".into())));
    }

    #[test]
    fn selects_execute_under_a_shared_catalog_guard() {
        let db = setup();
        // Hold a read guard on the catalog from this thread. Under the old
        // single-mutex engine the query below would block forever; under the
        // shared-lock read path it completes while the guard is held.
        std::thread::scope(|s| {
            let db = &db;
            let guard = db.catalog.read();
            let (tx, rx) = std::sync::mpsc::channel();
            s.spawn(move || {
                let n = db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap().len();
                tx.send(n).unwrap();
            });
            let n = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("a SELECT must run concurrently with another read guard");
            assert_eq!(n, 1);
            drop(guard);
        });
    }

    #[test]
    fn concurrent_selects_from_many_threads() {
        let db = setup();
        let q = db.prepare("SELECT owner FROM jobs WHERE job_id = ?").unwrap();
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let db = &db;
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..250i64 {
                        let id = 1 + (t + i) % 3;
                        let r = db.query_prepared(&q, &[Value::Int(id)]).unwrap();
                        assert_eq!(r.len(), 1);
                    }
                });
            }
        });
        assert!(db.stats().statements_executed >= 1000);
        db.check_consistency().unwrap();
    }
}
