//! The [`Database`] facade: catalog, statement execution, transactions,
//! write-ahead logging, checkpointing and recovery.

use crate::error::{Error, Result};
use crate::exec::{execute_select_with, matching_row_ids, matching_row_ids_with, QueryResult};
use crate::predicate::Expr;
use crate::schema::{lower_name, IndexDef, Schema};
use crate::sql::ast::{DeleteStmt, InsertStmt, Statement, UpdateStmt};
use crate::sql::parser::parse;
use crate::stats::OpStats;
use crate::table::Table;
use crate::tuple::Row;
use crate::txn::{LockManager, LockMode, TxnManager, UndoRecord};
use crate::value::Value;
use crate::wal::{LogRecord, TableSnapshot, TxnId, Wal};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// A SELECT produced rows.
    Query(QueryResult),
    /// A DML statement affected this many rows.
    Affected(usize),
    /// A DDL or transaction-control statement completed.
    Ack,
}

impl ExecResult {
    /// The query result, if this was a SELECT.
    pub fn query(self) -> Result<QueryResult> {
        match self {
            ExecResult::Query(q) => Ok(q),
            other => Err(Error::type_err(format!("expected query result, got {other:?}"))),
        }
    }

    /// The affected-row count, if this was a DML statement.
    pub fn affected(&self) -> usize {
        match self {
            ExecResult::Affected(n) => *n,
            _ => 0,
        }
    }
}

/// A statement prepared once and executable many times with different bound
/// parameter values. Obtained from [`Database::prepare`]; cheap to clone
/// (the parsed AST is shared).
#[derive(Debug, Clone)]
pub struct Prepared {
    stmt: Arc<Statement>,
    params: usize,
}

impl Prepared {
    /// The parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }

    /// Number of `?` parameter slots the statement expects.
    pub fn param_count(&self) -> usize {
        self.params
    }
}

/// Default capacity of the per-database LRU statement cache.
const STMT_CACHE_CAPACITY: usize = 256;

/// An LRU cache of parsed statements keyed by their SQL text.
///
/// Recency is a monotonically increasing generation stamped on each touch, so
/// a hit is one hash lookup and a counter bump — no allocation, no ordered
/// structure to maintain. Eviction (rare: only on a miss at capacity) scans
/// for the minimum generation, O(capacity).
#[derive(Debug)]
struct StmtCache {
    capacity: usize,
    entries: HashMap<String, CacheEntry>,
    next_gen: u64,
}

#[derive(Debug)]
struct CacheEntry {
    stmt: Arc<Statement>,
    params: usize,
    gen: u64,
}

impl Default for StmtCache {
    fn default() -> Self {
        StmtCache {
            capacity: STMT_CACHE_CAPACITY,
            entries: HashMap::new(),
            next_gen: 0,
        }
    }
}

impl StmtCache {
    /// Looks up `sql`, refreshing its recency on a hit.
    fn get(&mut self, sql: &str) -> Option<(Arc<Statement>, usize)> {
        let entry = self.entries.get_mut(sql)?;
        entry.gen = self.next_gen;
        self.next_gen += 1;
        Some((Arc::clone(&entry.stmt), entry.params))
    }

    /// Inserts a parsed statement, evicting the least-recently-used entry
    /// when at capacity. A zero capacity disables caching.
    fn insert(&mut self, sql: String, stmt: Arc<Statement>, params: usize) {
        if self.capacity == 0 {
            return;
        }
        self.entries.remove(&sql);
        while self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        self.entries.insert(sql, CacheEntry { stmt, params, gen });
    }

    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.gen)
            .map(|(sql, _)| sql.clone());
        match victim {
            Some(sql) => {
                self.entries.remove(&sql);
            }
            None => unreachable!("evict_lru called on an empty cache"),
        }
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > capacity {
            self.evict_lru();
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    catalog: BTreeMap<String, Table>,
    wal: Wal,
    locks: LockManager,
    txns: TxnManager,
    stats: OpStats,
    stmt_cache: StmtCache,
}

/// An embedded relational database.
///
/// The database is the DB2 stand-in of the reproduction: the CondorJ2
/// application server holds exactly one `Database` and turns every incoming
/// message into statements against it. All methods are safe to call from
/// multiple threads; internally a single mutex serialises statement execution
/// (the simulated deployment models concurrency through the cost model rather
/// than through parallel execution).
#[derive(Debug, Default)]
pub struct Database {
    inner: Mutex<Inner>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Reconstructs a database from a write-ahead log, as after a crash.
    pub fn recover_from(wal: Wal) -> Result<Self> {
        let catalog = wal.recover()?;
        let db = Database::new();
        {
            let mut inner = db.inner.lock();
            inner.catalog = catalog;
            inner.wal = wal;
        }
        Ok(db)
    }

    /// Returns a copy of the current write-ahead log (what a crash would find
    /// on disk). Used by recovery tests and failure-injection experiments.
    pub fn snapshot_wal(&self) -> Wal {
        self.inner.lock().wal.clone()
    }

    /// Cumulative operation statistics.
    pub fn stats(&self) -> OpStats {
        self.inner.lock().stats
    }

    /// Names of all tables in the catalog.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.lock().catalog.keys().cloned().collect()
    }

    /// Number of rows in `table`, or an error if it does not exist.
    pub fn table_len(&self, table: &str) -> Result<usize> {
        let inner = self.inner.lock();
        inner
            .catalog
            .get(&table.to_ascii_lowercase())
            .map(Table::len)
            .ok_or_else(|| Error::not_found(format!("table {table}")))
    }

    /// Approximate resident size of all tables, in bytes.
    pub fn approx_size(&self) -> usize {
        let inner = self.inner.lock();
        inner.catalog.values().map(Table::approx_size).sum()
    }

    /// Number of records currently retained in the write-ahead log.
    pub fn wal_len(&self) -> usize {
        self.inner.lock().wal.len()
    }

    /// Number of transactions committed so far.
    pub fn committed_txns(&self) -> u64 {
        self.inner.lock().txns.committed_count()
    }

    // --- transaction control -------------------------------------------------

    /// Begins an explicit transaction.
    pub fn begin(&self) -> TxnId {
        let mut inner = self.inner.lock();
        let txn = inner.txns.begin();
        inner.wal.append(LogRecord::Begin { txn }, &mut OpStats::default());
        txn
    }

    /// Commits an explicit transaction and releases its locks.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.txns.finish_commit(txn)?;
        let mut stats = std::mem::take(&mut inner.stats);
        inner.wal.append(LogRecord::Commit { txn }, &mut stats);
        stats.commits += 1;
        inner.stats = stats;
        inner.locks.release_all(txn);
        Ok(())
    }

    /// Rolls back an explicit transaction, undoing its changes.
    pub fn rollback(&self, txn: TxnId) -> Result<()> {
        let mut inner = self.inner.lock();
        let state = inner.txns.finish_abort(txn)?;
        // Undo in reverse order.
        for undo in state.undo.iter().rev() {
            match undo {
                UndoRecord::Insert { table, row_id } => {
                    if let Some(t) = inner.catalog.get_mut(table) {
                        let mut scratch = OpStats::default();
                        let _ = t.delete(*row_id, &mut scratch);
                    }
                }
                UndoRecord::Delete {
                    table,
                    row_id,
                    before,
                }
                | UndoRecord::Update {
                    table,
                    row_id,
                    before,
                } => {
                    if let Some(t) = inner.catalog.get_mut(table) {
                        t.restore(*row_id, before.clone())?;
                    }
                }
                UndoRecord::CreateTable { table } => {
                    inner.catalog.remove(table);
                }
            }
        }
        let mut stats = std::mem::take(&mut inner.stats);
        inner.wal.append(LogRecord::Abort { txn }, &mut stats);
        stats.aborts += 1;
        inner.stats = stats;
        inner.locks.release_all(txn);
        Ok(())
    }

    // --- statement preparation and the statement cache -----------------------

    /// Parses `sql` through the statement cache: a hit returns the shared
    /// parsed AST without re-lexing, a miss parses outside the lock and
    /// caches the result. Counted in `cache_hits` / `cache_misses`, and in
    /// `statements_parsed` only on a miss.
    fn cached_parse(&self, sql: &str) -> Result<(Arc<Statement>, usize)> {
        {
            let mut inner = self.inner.lock();
            if let Some(hit) = inner.stmt_cache.get(sql) {
                inner.stats.cache_hits += 1;
                return Ok(hit);
            }
            inner.stats.cache_misses += 1;
            inner.stats.statements_parsed += 1;
        }
        // Parse outside the lock; concurrent sessions keep executing.
        let stmt = Arc::new(parse(sql)?);
        let params = stmt.param_count();
        let mut inner = self.inner.lock();
        inner
            .stmt_cache
            .insert(sql.to_string(), Arc::clone(&stmt), params);
        Ok((stmt, params))
    }

    /// Prepares a statement for repeated execution. The SQL may contain `?`
    /// placeholders, bound positionally by `execute_prepared` /
    /// `query_prepared`. Preparation itself goes through the statement
    /// cache, so re-preparing the same text is cheap.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let (stmt, params) = self.cached_parse(sql)?;
        Ok(Prepared { stmt, params })
    }

    /// Changes the capacity of the statement cache (default 256 entries),
    /// evicting least-recently-used entries as needed. Zero disables caching.
    pub fn set_statement_cache_capacity(&self, capacity: usize) {
        self.inner.lock().stmt_cache.resize(capacity);
    }

    // --- statement execution -------------------------------------------------

    /// Parses and executes one statement in autocommit mode.
    ///
    /// Repeated executions of the same SQL text reuse the cached parse.
    /// Statements with `?` placeholders must go through [`Database::prepare`].
    pub fn execute(&self, sql: &str) -> Result<ExecResult> {
        let (stmt, params) = self.cached_parse(sql)?;
        if params > 0 {
            return Err(Error::type_err(format!(
                "statement has {params} parameter(s); use prepare()/execute_prepared()"
            )));
        }
        self.execute_stmt(&stmt)
    }

    /// Parses and executes one statement inside an explicit transaction.
    pub fn execute_in(&self, txn: TxnId, sql: &str) -> Result<ExecResult> {
        let (stmt, params) = self.cached_parse(sql)?;
        if params > 0 {
            return Err(Error::type_err(format!(
                "statement has {params} parameter(s); use prepare()/execute_prepared_in()"
            )));
        }
        self.execute_stmt_in(txn, &stmt)
    }

    /// Executes a prepared statement in autocommit mode with the given
    /// parameter values bound positionally to its `?` placeholders. The
    /// parameters flow through planning and evaluation as context — the
    /// cached AST is never cloned or rewritten.
    pub fn execute_prepared(&self, prepared: &Prepared, params: &[Value]) -> Result<ExecResult> {
        Self::check_arity(prepared, params)?;
        self.execute_stmt_params(&prepared.stmt, params)
    }

    /// Executes a prepared statement inside an explicit transaction.
    pub fn execute_prepared_in(
        &self,
        txn: TxnId,
        prepared: &Prepared,
        params: &[Value],
    ) -> Result<ExecResult> {
        Self::check_arity(prepared, params)?;
        self.execute_stmt_in_params(txn, &prepared.stmt, params)
    }

    fn check_arity(prepared: &Prepared, params: &[Value]) -> Result<()> {
        if params.len() != prepared.params {
            return Err(Error::type_err(format!(
                "statement has {} parameter(s) but {} value(s) were bound",
                prepared.params,
                params.len()
            )));
        }
        Ok(())
    }

    /// Executes a prepared SELECT and returns its rows.
    pub fn query_prepared(&self, prepared: &Prepared, params: &[Value]) -> Result<QueryResult> {
        self.execute_prepared(prepared, params)?.query()
    }

    /// Executes an already-parsed statement in autocommit mode.
    ///
    /// SELECTs take a read-only fast path: statement execution is serialised
    /// by the engine mutex, so an autocommit read is atomic without opening a
    /// transaction, registering locks or appending WAL records — it only has
    /// to fail (retryably, like a lock wait timeout) when another active
    /// transaction write-locks one of its tables.
    pub fn execute_stmt(&self, stmt: &Statement) -> Result<ExecResult> {
        self.execute_stmt_params(stmt, &[])
    }

    fn execute_stmt_params(&self, stmt: &Statement, params: &[Value]) -> Result<ExecResult> {
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::type_err(
                "use begin()/commit()/rollback() or a Session for transaction control",
            )),
            Statement::Select(sel) => {
                let mut inner = self.inner.lock();
                let inner = &mut *inner;
                Self::ensure_readable(&inner.locks, &sel.table)?;
                for join in &sel.joins {
                    Self::ensure_readable(&inner.locks, &join.table)?;
                }
                inner.stats.statements_executed += 1;
                let result = execute_select_with(&inner.catalog, sel, params, &mut inner.stats)?;
                Ok(ExecResult::Query(result))
            }
            _ => {
                let txn = self.begin();
                match self.execute_stmt_in_params(txn, stmt, params) {
                    Ok(result) => {
                        self.commit(txn)?;
                        Ok(result)
                    }
                    Err(e) => {
                        // Roll back best-effort; surface the original error.
                        let _ = self.rollback(txn);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Executes an already-parsed statement inside an explicit transaction.
    pub fn execute_stmt_in(&self, txn: TxnId, stmt: &Statement) -> Result<ExecResult> {
        self.execute_stmt_in_params(txn, stmt, &[])
    }

    fn execute_stmt_in_params(
        &self,
        txn: TxnId,
        stmt: &Statement,
        params: &[Value],
    ) -> Result<ExecResult> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.txns.get_active(txn)?;
        inner.stats.statements_executed += 1;
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::type_err(
                "nested transaction control is not supported",
            )),
            Statement::CreateTable(schema) => {
                let name = schema.name.clone();
                inner.locks.acquire(txn, &name, LockMode::Exclusive)?;
                if inner.catalog.contains_key(&name) {
                    return Err(Error::AlreadyExists(format!("table {name}")));
                }
                let table = Table::new(schema.clone())?;
                inner.catalog.insert(name.clone(), table);
                inner.wal.append(
                    LogRecord::CreateTable {
                        txn,
                        schema: schema.clone(),
                    },
                    &mut inner.stats,
                );
                inner
                    .txns
                    .push_undo(txn, UndoRecord::CreateTable { table: name })?;
                Ok(ExecResult::Ack)
            }
            Statement::CreateIndex {
                table,
                column,
                unique,
            } => {
                let name = table.to_ascii_lowercase();
                inner.locks.acquire(txn, &name, LockMode::Exclusive)?;
                let old = inner
                    .catalog
                    .get(&name)
                    .ok_or_else(|| Error::not_found(format!("table {table}")))?;
                let mut schema = old.schema.clone();
                let prefix = if *unique { "uidx" } else { "idx" };
                let idx_name = format!("{prefix}_{name}_{column}");
                if schema.indexes.iter().any(|i| i.name == idx_name) {
                    return Err(Error::AlreadyExists(format!("index {idx_name}")));
                }
                schema.indexes.push(IndexDef {
                    name: idx_name,
                    column: column.to_ascii_lowercase(),
                    unique: *unique,
                });
                // Rebuild the table with the new index over the existing rows.
                let mut rebuilt = Table::new(schema)?;
                let mut scratch = OpStats::default();
                for stored in old.scan(&mut scratch) {
                    rebuilt.insert_with_id(stored.id, stored.row, &mut scratch)?;
                }
                inner.stats.index_maintenance += rebuilt.len() as u64;
                inner.catalog.insert(name, rebuilt);
                Ok(ExecResult::Ack)
            }
            Statement::DropTable(table) => {
                let name = table.to_ascii_lowercase();
                inner.locks.acquire(txn, &name, LockMode::Exclusive)?;
                inner
                    .catalog
                    .remove(&name)
                    .ok_or_else(|| Error::not_found(format!("table {table}")))?;
                inner.wal.append(
                    LogRecord::DropTable {
                        txn,
                        table: name,
                    },
                    &mut inner.stats,
                );
                Ok(ExecResult::Ack)
            }
            Statement::Select(sel) => {
                inner
                    .locks
                    .acquire(txn, &lower_name(&sel.table), LockMode::Shared)?;
                for join in &sel.joins {
                    inner
                        .locks
                        .acquire(txn, &lower_name(&join.table), LockMode::Shared)?;
                }
                let result = execute_select_with(&inner.catalog, sel, params, &mut inner.stats)?;
                Ok(ExecResult::Query(result))
            }
            Statement::Insert(ins) => Self::run_insert(inner, txn, ins, params),
            Statement::Update(upd) => Self::run_update(inner, txn, upd, params),
            Statement::Delete(del) => Self::run_delete(inner, txn, del, params),
        }
    }

    /// Convenience wrapper: executes a SELECT and returns its rows.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.execute(sql)?.query()
    }

    /// Convenience wrapper: runs `SELECT COUNT(*) FROM table [WHERE ...]`
    /// expressed programmatically and returns the count.
    pub fn count(&self, table: &str, filter: Option<&Expr>) -> Result<i64> {
        let inner = self.inner.lock();
        let t = inner
            .catalog
            .get(&table.to_ascii_lowercase())
            .ok_or_else(|| Error::not_found(format!("table {table}")))?;
        match filter {
            None => Ok(t.len() as i64),
            Some(f) => {
                let mut stats = OpStats::default();
                Ok(matching_row_ids(t, Some(f), &mut stats)?.len() as i64)
            }
        }
    }

    /// Fails (retryably) when another transaction write-locks `table`.
    fn ensure_readable(locks: &LockManager, table: &str) -> Result<()> {
        let key = lower_name(table);
        if let Some(writer) = locks.writer_of(&key) {
            return Err(Error::LockConflict(format!(
                "table {key} write-locked by {writer}"
            )));
        }
        Ok(())
    }

    fn run_insert(
        inner: &mut Inner,
        txn: TxnId,
        ins: &InsertStmt,
        params: &[Value],
    ) -> Result<ExecResult> {
        let name = ins.table.to_ascii_lowercase();
        inner.locks.acquire(txn, &name, LockMode::Exclusive)?;
        let table = inner
            .catalog
            .get_mut(&name)
            .ok_or_else(|| Error::not_found(format!("table {}", ins.table)))?;
        let schema = table.schema.clone();
        let empty_schema = Schema::new("values", Vec::new());
        let empty_row = Row::default();
        let mut inserted = 0usize;
        for row_exprs in &ins.rows {
            // Evaluate the literal expressions for this VALUES row.
            let mut provided = Vec::with_capacity(row_exprs.len());
            for e in row_exprs {
                provided.push(e.eval_with(&empty_schema, &empty_row, params)?);
            }
            // Rearrange into schema order.
            let values: Vec<Value> = if ins.columns.is_empty() {
                if provided.len() != schema.arity() {
                    return Err(Error::type_err(format!(
                        "table {} expects {} values, got {}",
                        schema.name,
                        schema.arity(),
                        provided.len()
                    )));
                }
                provided
            } else {
                if provided.len() != ins.columns.len() {
                    return Err(Error::type_err(format!(
                        "INSERT column list has {} entries but {} values were given",
                        ins.columns.len(),
                        provided.len()
                    )));
                }
                let mut values = vec![Value::Null; schema.arity()];
                for (col, value) in ins.columns.iter().zip(provided) {
                    let idx = schema.column_index(col)?;
                    values[idx] = value;
                }
                values
            };
            let row_id = table.insert(values, &mut inner.stats)?;
            let row = table.get(row_id).cloned().ok_or_else(|| {
                Error::internal("row missing immediately after insert")
            })?;
            inner.wal.append(
                LogRecord::Insert {
                    txn,
                    table: name.clone(),
                    row_id,
                    row,
                },
                &mut inner.stats,
            );
            inner
                .txns
                .push_undo(txn, UndoRecord::Insert { table: name.clone(), row_id })?;
            inserted += 1;
        }
        Ok(ExecResult::Affected(inserted))
    }

    fn run_update(
        inner: &mut Inner,
        txn: TxnId,
        upd: &UpdateStmt,
        params: &[Value],
    ) -> Result<ExecResult> {
        let name = upd.table.to_ascii_lowercase();
        inner.locks.acquire(txn, &name, LockMode::Exclusive)?;
        let table = inner
            .catalog
            .get_mut(&name)
            .ok_or_else(|| Error::not_found(format!("table {}", upd.table)))?;
        let ids = matching_row_ids_with(table, upd.filter.as_ref(), params, &mut inner.stats)?;
        let schema = table.schema.clone();
        let mut affected = 0usize;
        for id in ids {
            let current = table
                .get(id)
                .cloned()
                .ok_or_else(|| Error::internal("matched row vanished during update"))?;
            let mut assignments = Vec::with_capacity(upd.assignments.len());
            for (col, expr) in &upd.assignments {
                let idx = schema.column_index(col)?;
                let value = expr.eval_with(&schema, &current, params)?;
                assignments.push((idx, value));
            }
            let (before, after) = table.update(id, &assignments, &mut inner.stats)?;
            inner.wal.append(
                LogRecord::Update {
                    txn,
                    table: name.clone(),
                    row_id: id,
                    before: before.clone(),
                    after,
                },
                &mut inner.stats,
            );
            inner.txns.push_undo(
                txn,
                UndoRecord::Update {
                    table: name.clone(),
                    row_id: id,
                    before,
                },
            )?;
            affected += 1;
        }
        Ok(ExecResult::Affected(affected))
    }

    fn run_delete(
        inner: &mut Inner,
        txn: TxnId,
        del: &DeleteStmt,
        params: &[Value],
    ) -> Result<ExecResult> {
        let name = del.table.to_ascii_lowercase();
        inner.locks.acquire(txn, &name, LockMode::Exclusive)?;
        let table = inner
            .catalog
            .get_mut(&name)
            .ok_or_else(|| Error::not_found(format!("table {}", del.table)))?;
        let ids = matching_row_ids_with(table, del.filter.as_ref(), params, &mut inner.stats)?;
        let mut affected = 0usize;
        for id in ids {
            let before = table.delete(id, &mut inner.stats)?;
            inner.wal.append(
                LogRecord::Delete {
                    txn,
                    table: name.clone(),
                    row_id: id,
                    before: before.clone(),
                },
                &mut inner.stats,
            );
            inner.txns.push_undo(
                txn,
                UndoRecord::Delete {
                    table: name.clone(),
                    row_id: id,
                    before,
                },
            )?;
            affected += 1;
        }
        Ok(ExecResult::Affected(affected))
    }

    // --- maintenance ----------------------------------------------------------

    /// Takes a checkpoint: snapshots every table into the log and truncates
    /// the records before it. Returns the number of bytes written.
    pub fn checkpoint(&self) -> u64 {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut scratch = OpStats::default();
        let snapshot: Vec<TableSnapshot> = inner
            .catalog
            .values()
            .map(|t| TableSnapshot {
                schema: t.schema.clone(),
                rows: t
                    .scan(&mut scratch)
                    .into_iter()
                    .map(|r| (r.id, r.row))
                    .collect(),
            })
            .collect();
        let before = inner.stats.wal_bytes;
        inner.wal.checkpoint(snapshot, &mut inner.stats);
        inner.stats.wal_bytes - before
    }

    /// Verifies heap/index consistency of every table. Used by tests.
    pub fn check_consistency(&self) -> Result<()> {
        let inner = self.inner.lock();
        for table in inner.catalog.values() {
            table.check_consistency()?;
        }
        Ok(())
    }
}

/// A lightweight session that tracks an optional open transaction so callers
/// can drive the database purely through SQL text, including `BEGIN`,
/// `COMMIT` and `ROLLBACK`.
#[derive(Debug)]
pub struct Session<'a> {
    db: &'a Database,
    txn: Option<TxnId>,
}

impl<'a> Session<'a> {
    /// Creates a session over `db` with no open transaction.
    pub fn new(db: &'a Database) -> Self {
        Session { db, txn: None }
    }

    /// True when an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Executes one SQL statement, honouring transaction-control statements.
    /// Parsing goes through the database's statement cache.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult> {
        let (stmt, params) = self.db.cached_parse(sql)?;
        if params > 0 {
            return Err(Error::type_err(format!(
                "statement has {params} parameter(s); use prepare()/execute_prepared()"
            )));
        }
        match &*stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(Error::type_err("transaction already open"));
                }
                self.txn = Some(self.db.begin());
                Ok(ExecResult::Ack)
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::type_err("no open transaction"))?;
                self.db.commit(txn)?;
                Ok(ExecResult::Ack)
            }
            Statement::Rollback => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::type_err("no open transaction"))?;
                self.db.rollback(txn)?;
                Ok(ExecResult::Ack)
            }
            other => match self.txn {
                Some(txn) => self.db.execute_stmt_in(txn, other),
                None => self.db.execute_stmt(other),
            },
        }
    }
}

impl<'a> Drop for Session<'a> {
    fn drop(&mut self) {
        if let Some(txn) = self.txn.take() {
            let _ = self.db.rollback(txn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, state TEXT, runtime DOUBLE)",
        )
        .unwrap();
        db.execute("CREATE INDEX ON jobs (state)").unwrap();
        db.execute(
            "INSERT INTO jobs (job_id, owner, state, runtime) VALUES \
             (1, 'alice', 'idle', 60), (2, 'bob', 'idle', 120), (3, 'alice', 'running', 300)",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_crud() {
        let db = setup();
        assert_eq!(db.table_len("jobs").unwrap(), 3);

        let r = db.query("SELECT owner FROM jobs WHERE state = 'idle' ORDER BY job_id").unwrap();
        assert_eq!(r.len(), 2);

        let n = db
            .execute("UPDATE jobs SET state = 'running' WHERE job_id = 1")
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        let r = db.query("SELECT COUNT(*) AS n FROM jobs WHERE state = 'running'").unwrap();
        assert_eq!(r.scalar_int(), Some(2));

        let n = db.execute("DELETE FROM jobs WHERE owner = 'alice'").unwrap().affected();
        assert_eq!(n, 2);
        assert_eq!(db.table_len("jobs").unwrap(), 1);
        db.check_consistency().unwrap();
    }

    #[test]
    fn autocommit_rolls_back_failed_statements() {
        let db = setup();
        // Second row violates the primary key; the whole statement must not apply.
        let err = db.execute("INSERT INTO jobs (job_id, owner) VALUES (10, 'x'), (1, 'y')");
        assert!(err.is_err());
        assert_eq!(db.table_len("jobs").unwrap(), 3);
        assert_eq!(db.count("jobs", Some(&Expr::col_eq("job_id", 10))).unwrap(), 0);
        db.check_consistency().unwrap();
    }

    #[test]
    fn explicit_transactions_commit_and_rollback() {
        let db = setup();
        let txn = db.begin();
        db.execute_in(txn, "INSERT INTO jobs (job_id, owner, state) VALUES (4, 'carol', 'idle')")
            .unwrap();
        db.execute_in(txn, "UPDATE jobs SET state = 'held' WHERE job_id = 2").unwrap();
        db.execute_in(txn, "DELETE FROM jobs WHERE job_id = 3").unwrap();
        db.rollback(txn).unwrap();

        assert_eq!(db.table_len("jobs").unwrap(), 3);
        let r = db.query("SELECT state FROM jobs WHERE job_id = 2").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("idle".into())));

        let txn = db.begin();
        db.execute_in(txn, "INSERT INTO jobs (job_id, owner, state) VALUES (4, 'carol', 'idle')")
            .unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 4);
        db.check_consistency().unwrap();
    }

    #[test]
    fn lock_conflicts_are_reported() {
        let db = setup();
        let t1 = db.begin();
        let t2 = db.begin();
        db.execute_in(t1, "UPDATE jobs SET state = 'held' WHERE job_id = 1").unwrap();
        let err = db.execute_in(t2, "SELECT * FROM jobs").unwrap_err();
        assert!(err.is_retryable());
        db.commit(t1).unwrap();
        // After the writer commits, the reader can proceed.
        db.execute_in(t2, "SELECT * FROM jobs").unwrap();
        db.commit(t2).unwrap();
    }

    #[test]
    fn recovery_restores_committed_state() {
        let db = setup();
        db.execute("UPDATE jobs SET state = 'done' WHERE job_id = 3").unwrap();
        // An uncommitted transaction at crash time must disappear.
        let txn = db.begin();
        db.execute_in(txn, "DELETE FROM jobs").unwrap();

        let wal = db.snapshot_wal();
        let recovered = Database::recover_from(wal).unwrap();
        assert_eq!(recovered.table_len("jobs").unwrap(), 3);
        let r = recovered.query("SELECT state FROM jobs WHERE job_id = 3").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("done".into())));
        recovered.check_consistency().unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_preserves_recovery() {
        let db = setup();
        let before = db.wal_len();
        db.checkpoint();
        assert!(db.wal_len() < before);
        db.execute("INSERT INTO jobs (job_id, owner) VALUES (9, 'zoe')").unwrap();
        let recovered = Database::recover_from(db.snapshot_wal()).unwrap();
        assert_eq!(recovered.table_len("jobs").unwrap(), 4);
        assert!(db.stats().checkpoints >= 1);
    }

    #[test]
    fn session_drives_transactions_through_sql() {
        let db = setup();
        let mut session = Session::new(&db);
        session.execute("BEGIN").unwrap();
        assert!(session.in_transaction());
        session
            .execute("INSERT INTO jobs (job_id, owner) VALUES (7, 'sam')")
            .unwrap();
        session.execute("ROLLBACK").unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 3);

        session.execute("BEGIN").unwrap();
        session
            .execute("INSERT INTO jobs (job_id, owner) VALUES (7, 'sam')")
            .unwrap();
        session.execute("COMMIT").unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 4);

        assert!(session.execute("COMMIT").is_err());
        assert!(Session::new(&db).execute("ROLLBACK").is_err());
    }

    #[test]
    fn dropped_session_releases_its_transaction() {
        let db = setup();
        {
            let mut session = Session::new(&db);
            session.execute("BEGIN").unwrap();
            session
                .execute("UPDATE jobs SET state = 'held' WHERE job_id = 1")
                .unwrap();
            // Dropped without commit.
        }
        // The lock must be gone and the change rolled back.
        let r = db.query("SELECT state FROM jobs WHERE job_id = 1").unwrap();
        assert_eq!(r.first_value("state"), Some(&Value::Text("idle".into())));
    }

    #[test]
    fn ddl_statements_and_errors() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        assert!(db.execute("CREATE TABLE t (a INT)").is_err());
        db.execute("DROP TABLE t").unwrap();
        assert!(db.execute("DROP TABLE t").is_err());
        assert!(db.execute("SELECT * FROM t").is_err());
        assert!(db.execute("BEGIN").is_err());
    }

    #[test]
    fn stats_accumulate() {
        let db = setup();
        let s1 = db.stats();
        db.query("SELECT * FROM jobs").unwrap();
        db.execute("UPDATE jobs SET runtime = runtime + 1 WHERE state = 'idle'").unwrap();
        let s2 = db.stats();
        let d = s2.delta_since(&s1);
        assert!(d.rows_read >= 3);
        assert_eq!(d.rows_updated, 2);
        assert!(d.statements_executed >= 2);
        assert!(d.wal_records >= 2);
    }

    #[test]
    fn prepared_statements_bind_parameters() {
        let db = setup();
        let q = db.prepare("SELECT owner FROM jobs WHERE job_id = ?").unwrap();
        assert_eq!(q.param_count(), 1);
        let r = db.query_prepared(&q, &[Value::Int(2)]).unwrap();
        assert_eq!(r.first_value("owner"), Some(&Value::Text("bob".into())));
        // Re-binding different values reuses the same parse.
        let r = db.query_prepared(&q, &[Value::Int(3)]).unwrap();
        assert_eq!(r.first_value("owner"), Some(&Value::Text("alice".into())));
        // Arity mismatches are reported.
        assert!(db.query_prepared(&q, &[]).is_err());
        assert!(db.query_prepared(&q, &[Value::Int(1), Value::Int(2)]).is_err());

        // DML with parameters, including SQL-hostile text bound verbatim.
        let upd = db
            .prepare("UPDATE jobs SET owner = ? WHERE job_id = ?")
            .unwrap();
        let n = db
            .execute_prepared(&upd, &[Value::Text("o'brien -- x".into()), Value::Int(1)])
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        let r = db.query("SELECT owner FROM jobs WHERE job_id = 1").unwrap();
        assert_eq!(r.first_value("owner"), Some(&Value::Text("o'brien -- x".into())));

        // NULL binds as SQL NULL.
        let upd = db.prepare("UPDATE jobs SET state = ? WHERE job_id = ?").unwrap();
        db.execute_prepared(&upd, &[Value::Null, Value::Int(2)]).unwrap();
        let r = db.query("SELECT COUNT(*) FROM jobs WHERE state IS NULL").unwrap();
        assert_eq!(r.scalar_int(), Some(1));
        db.check_consistency().unwrap();
    }

    #[test]
    fn plain_execute_rejects_placeholders() {
        let db = setup();
        assert!(db.execute("SELECT * FROM jobs WHERE job_id = ?").is_err());
        let txn = db.begin();
        assert!(db.execute_in(txn, "DELETE FROM jobs WHERE job_id = ?").is_err());
        db.rollback(txn).unwrap();
        let mut session = Session::new(&db);
        assert!(session.execute("SELECT * FROM jobs WHERE job_id = ?").is_err());
    }

    #[test]
    fn statement_cache_stops_reparsing_once_warm() {
        let db = setup();
        db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap(); // cold: parses
        let warm = db.stats();
        for _ in 0..10 {
            db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap();
        }
        let after = db.stats();
        assert_eq!(
            after.statements_parsed, warm.statements_parsed,
            "repeated identical SQL must not grow statements_parsed once the cache is warm"
        );
        assert_eq!(after.cache_hits, warm.cache_hits + 10);
        assert_eq!(after.cache_misses, warm.cache_misses);
    }

    #[test]
    fn statement_cache_evicts_least_recently_used() {
        let db = setup();
        db.set_statement_cache_capacity(2);
        db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap(); // A: miss
        db.query("SELECT * FROM jobs WHERE job_id = 2").unwrap(); // B: miss
        db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap(); // A: hit
        db.query("SELECT * FROM jobs WHERE job_id = 3").unwrap(); // C: miss, evicts B
        let s1 = db.stats();
        db.query("SELECT * FROM jobs WHERE job_id = 1").unwrap(); // A still cached
        let s2 = db.stats();
        assert_eq!(s2.cache_hits, s1.cache_hits + 1);
        db.query("SELECT * FROM jobs WHERE job_id = 2").unwrap(); // B was evicted
        let s3 = db.stats();
        assert_eq!(s3.cache_misses, s2.cache_misses + 1);

        // Zero capacity disables caching entirely.
        db.set_statement_cache_capacity(0);
        let s4 = db.stats();
        db.query("SELECT * FROM jobs WHERE job_id = 3").unwrap();
        db.query("SELECT * FROM jobs WHERE job_id = 3").unwrap();
        let s5 = db.stats();
        assert_eq!(s5.cache_hits, s4.cache_hits);
        assert_eq!(s5.cache_misses, s4.cache_misses + 2);
    }

    #[test]
    fn prepared_statements_inside_transactions() {
        let db = setup();
        let ins = db
            .prepare("INSERT INTO jobs (job_id, owner, state) VALUES (?, ?, ?)")
            .unwrap();
        let txn = db.begin();
        db.execute_prepared_in(
            txn,
            &ins,
            &[Value::Int(10), Value::from("zoe"), Value::from("idle")],
        )
        .unwrap();
        db.rollback(txn).unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 3, "rollback undoes prepared insert");

        let txn = db.begin();
        db.execute_prepared_in(
            txn,
            &ins,
            &[Value::Int(10), Value::from("zoe"), Value::from("idle")],
        )
        .unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.table_len("jobs").unwrap(), 4);
        db.check_consistency().unwrap();
    }

    #[test]
    fn unique_index_via_sql() {
        let db = Database::new();
        db.execute("CREATE TABLE m (id INT PRIMARY KEY, name TEXT)").unwrap();
        db.execute("CREATE UNIQUE INDEX ON m (name)").unwrap();
        db.execute("INSERT INTO m VALUES (1, 'node01')").unwrap();
        assert!(db.execute("INSERT INTO m VALUES (2, 'node01')").is_err());
        db.execute("INSERT INTO m VALUES (2, 'node02')").unwrap();
        assert_eq!(db.table_len("m").unwrap(), 2);
    }
}
