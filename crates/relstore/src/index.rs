//! In-memory ordered secondary indexes.

use crate::tuple::RowId;
use crate::value::Value;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::ops::Bound;

/// An ordered index mapping a column value to the set of rows holding it.
///
/// The index is maintained eagerly by [`crate::table::Table`] and is
/// **multi-version**: it covers the key of every retained row version, so a
/// snapshot reader probing an old key still finds a row whose current
/// version has moved elsewhere. Entries are physical — the `unique` flag is
/// metadata for the table, which enforces uniqueness against *live* rows
/// (a retained dead version may legitimately share a key with a live row).
/// Lookups return row ids in ascending id order so scans are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Index {
    /// Index name (unique within the table).
    pub name: String,
    /// Ordinal of the indexed column.
    pub column_idx: usize,
    /// Whether the covered column is unique among live rows (enforced by the
    /// table, not by entry insertion).
    pub unique: bool,
    entries: BTreeMap<Value, BTreeSet<RowId>>,
    len: usize,
}

impl Index {
    /// Creates an empty index over the column at `column_idx`.
    pub fn new(name: impl Into<String>, column_idx: usize, unique: bool) -> Self {
        Index {
            name: name.into(),
            column_idx,
            unique,
            entries: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of (key, row) entries in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Inserts an entry; re-inserting an existing `(key, row)` pair is
    /// idempotent. NULL keys are not indexed (SQL unique constraints ignore
    /// NULLs, and NULL predicates never probe the index).
    pub fn insert(&mut self, key: &Value, row: RowId) {
        if key.is_null() {
            return;
        }
        if self.entries.entry(key.clone()).or_default().insert(row) {
            self.len += 1;
        }
    }

    /// Removes an entry; missing entries are ignored.
    pub fn remove(&mut self, key: &Value, row: RowId) {
        if key.is_null() {
            return;
        }
        if let Some(set) = self.entries.get_mut(key) {
            if set.remove(&row) {
                self.len -= 1;
            }
            if set.is_empty() {
                self.entries.remove(key);
            }
        }
    }

    /// Iterates the rows holding exactly `key` without allocating (the
    /// zero-copy form of [`Index::lookup`], used by the hot uniqueness
    /// checks on the write path).
    pub fn rows_with_key<'a>(&'a self, key: &Value) -> impl Iterator<Item = RowId> + 'a {
        self.entries
            .get(key)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Returns the rows holding exactly `key`.
    pub fn lookup(&self, key: &Value) -> Vec<RowId> {
        self.lookup_set(key)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Returns the entry set for exactly `key`, borrowed from the index —
    /// the allocation-free form of [`Index::lookup`] the point-read access
    /// path streams from.
    pub fn lookup_set(&self, key: &Value) -> Option<&BTreeSet<RowId>> {
        if key.is_null() {
            return None;
        }
        self.entries.get(key)
    }

    /// Returns the rows with keys in `[lo, hi]` (either bound may be open),
    /// in ascending row-id order. An inverted range (`lo > hi`, e.g. from a
    /// contradictory predicate) yields no rows.
    ///
    /// Entries are multi-version, so one row may appear under several keys
    /// inside the range (old versions keep their entries until vacuum); the
    /// result is de-duplicated so the access path yields each row at most
    /// once.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<RowId> {
        if let (Some(lo), Some(hi)) = (lo, hi) {
            if lo > hi {
                return Vec::new();
            }
        }
        let lo_bound = match lo {
            Some(v) => Bound::Included(v),
            None => Bound::Unbounded,
        };
        let hi_bound = match hi {
            Some(v) => Bound::Included(v),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (_, rows) in self.entries.range::<Value, _>((lo_bound, hi_bound)) {
            out.extend(rows.iter().copied());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True if any row holds `key`.
    pub fn contains_key(&self, key: &Value) -> bool {
        !key.is_null() && self.entries.contains_key(key)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut idx = Index::new("idx", 0, false);
        idx.insert(&Value::Text("idle".into()), RowId(1));
        idx.insert(&Value::Text("idle".into()), RowId(2));
        idx.insert(&Value::Text("running".into()), RowId(3));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(
            idx.lookup(&Value::Text("idle".into())),
            vec![RowId(1), RowId(2)]
        );
        idx.remove(&Value::Text("idle".into()), RowId(1));
        assert_eq!(idx.lookup(&Value::Text("idle".into())), vec![RowId(2)]);
        assert_eq!(idx.len(), 2);
        // Removing a missing entry is a no-op.
        idx.remove(&Value::Text("idle".into()), RowId(99));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn unique_index_entries_are_physical() {
        let mut idx = Index::new("uidx", 0, true);
        idx.insert(&Value::Int(1), RowId(1));
        // Entries are multi-version: a dead version of row 2 may share the
        // key with a live row 1, so entry insertion never rejects — the
        // table enforces uniqueness against live rows.
        idx.insert(&Value::Int(1), RowId(2));
        assert_eq!(idx.len(), 2);
        // Re-inserting the same (key, row) pair is idempotent.
        idx.insert(&Value::Int(1), RowId(1));
        assert_eq!(idx.len(), 2);
        assert!(idx.unique, "the uniqueness intent is kept as metadata");
    }

    #[test]
    fn null_keys_are_not_indexed() {
        let mut idx = Index::new("uidx", 0, true);
        idx.insert(&Value::Null, RowId(1));
        idx.insert(&Value::Null, RowId(2));
        assert_eq!(idx.len(), 0);
        assert!(idx.lookup(&Value::Null).is_empty());
        assert!(!idx.contains_key(&Value::Null));
    }

    #[test]
    fn range_scans_respect_bounds() {
        let mut idx = Index::new("idx", 0, false);
        for i in 0..10 {
            idx.insert(&Value::Int(i), RowId(i as u64));
        }
        let rows = idx.range(Some(&Value::Int(3)), Some(&Value::Int(6)));
        assert_eq!(rows, vec![RowId(3), RowId(4), RowId(5), RowId(6)]);
        let rows = idx.range(None, Some(&Value::Int(1)));
        assert_eq!(rows, vec![RowId(0), RowId(1)]);
        let rows = idx.range(Some(&Value::Int(8)), None);
        assert_eq!(rows, vec![RowId(8), RowId(9)]);
        assert_eq!(idx.range(None, None).len(), 10);
    }

    #[test]
    fn range_deduplicates_multi_version_entries() {
        let mut idx = Index::new("idx", 0, false);
        // Row 7 appears under two keys (a retained old version and the
        // current one); a range covering both must yield it once.
        idx.insert(&Value::Int(1), RowId(7));
        idx.insert(&Value::Int(3), RowId(7));
        idx.insert(&Value::Int(2), RowId(1));
        assert_eq!(
            idx.range(Some(&Value::Int(0)), Some(&Value::Int(5))),
            vec![RowId(1), RowId(7)]
        );
        assert_eq!(idx.lookup(&Value::Int(3)), vec![RowId(7)]);
    }

    #[test]
    fn clear_empties_the_index() {
        let mut idx = Index::new("idx", 0, false);
        idx.insert(&Value::Int(1), RowId(1));
        idx.clear();
        assert!(idx.is_empty());
        assert!(idx.lookup(&Value::Int(1)).is_empty());
    }
}
