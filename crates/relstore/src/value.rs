//! Dynamically typed SQL values and their data types.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::sync::Arc;
use std::fmt;

/// The SQL data types supported by the engine.
///
/// This is the small set the CondorJ2 schema needs: integers for identifiers
/// and counters, doubles for rates and loads, text for names and ClassAd-style
/// attributes, booleans for flags and timestamps for event times (stored as
/// integral seconds of simulated time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Double,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// A point in (simulated) time, stored as whole milliseconds.
    Timestamp,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A single dynamically typed value.
///
/// `Null` is a member of every type; comparisons involving `Null` follow SQL
/// three-valued logic at the predicate layer (see [`crate::predicate`]), while
/// the total order implemented here (used for index keys and ORDER BY) sorts
/// `Null` first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer value.
    Int(i64),
    /// Double-precision value.
    Double(f64),
    /// Text value (shared: cloning a text value bumps a refcount).
    Text(Arc<str>),
    /// Boolean value.
    Bool(bool),
    /// Timestamp value in whole milliseconds of simulated time.
    Timestamp(i64),
}

impl Value {
    /// Returns the data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer content, coercing timestamps, or an error.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) | Value::Timestamp(i) => Ok(*i),
            other => Err(Error::type_err(format!("expected INT, got {other}"))),
        }
    }

    /// Returns the numeric content as f64 (ints widen), or an error.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            Value::Double(d) => Ok(*d),
            Value::Int(i) | Value::Timestamp(i) => Ok(*i as f64),
            other => Err(Error::type_err(format!("expected DOUBLE, got {other}"))),
        }
    }

    /// Returns the text content, or an error.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::type_err(format!("expected TEXT, got {other}"))),
        }
    }

    /// Returns the boolean content, or an error.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_err(format!("expected BOOL, got {other}"))),
        }
    }

    /// Checks whether this value can be stored in a column of type `ty`.
    ///
    /// NULL is compatible with every type. Integers are accepted by DOUBLE
    /// and TIMESTAMP columns (the common literal case).
    pub fn is_compatible_with(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Double | DataType::Timestamp)
                | (Value::Double(_), DataType::Double)
                | (Value::Text(_), DataType::Text)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Timestamp(_), DataType::Timestamp | DataType::Int)
        )
    }

    /// Coerces the value into the exact representation used by a column of
    /// type `ty` (e.g. INT literal into a DOUBLE or TIMESTAMP column).
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let ok = match (self, ty) {
            (Value::Int(i), DataType::Double) => Value::Double(*i as f64),
            (Value::Int(i), DataType::Timestamp) => Value::Timestamp(*i),
            (Value::Timestamp(i), DataType::Int) => Value::Int(*i),
            (v, t) if v.is_compatible_with(t) => v.clone(),
            (v, t) => {
                return Err(Error::type_err(format!("cannot store {v} in {t} column")));
            }
        };
        Ok(ok)
    }

    /// Compares two values for SQL equality. Returns `None` when either side
    /// is NULL (unknown), mirroring three-valued logic.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// Compares two values for ordering. Returns `None` when either side is
    /// NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Text(_), _) | (_, Value::Text(_)) => None,
            (Value::Bool(_), _) | (_, Value::Bool(_)) => None,
            // Numeric family: Int, Double, Timestamp compare by numeric value.
            (a, b) => {
                let (x, y) = (a.as_double().ok()?, b.as_double().ok()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// A total order over all values, used for index keys and sorting.
    /// NULL sorts first, then booleans, then numbers, then text.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Double(_) | Value::Timestamp(_) => 2,
                Value::Text(_) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) => {
                let x = a.as_double().unwrap_or(f64::NEG_INFINITY);
                let y = b.as_double().unwrap_or(f64::NEG_INFINITY);
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// Approximate in-memory size in bytes, used by the operation cost model.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Timestamp(_) => 8,
            Value::Double(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => s.len() + 8,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal && self.is_null() == other.is_null()
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) | Value::Timestamp(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Timestamp(t) => write!(f, "TS({t})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Text("x".into()).data_type(), Some(DataType::Text));
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Timestamp(9).as_int().unwrap(), 9);
        assert!(Value::Text("x".into()).as_int().is_err());
        assert_eq!(Value::Int(3).as_double().unwrap(), 3.0);
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::Int(1).as_bool().is_err());
    }

    #[test]
    fn compatibility_and_coercion() {
        assert!(Value::Int(5).is_compatible_with(DataType::Double));
        assert!(Value::Null.is_compatible_with(DataType::Text));
        assert!(!Value::Text("a".into()).is_compatible_with(DataType::Int));
        assert_eq!(
            Value::Int(5).coerce_to(DataType::Double).unwrap(),
            Value::Double(5.0)
        );
        assert_eq!(
            Value::Int(5).coerce_to(DataType::Timestamp).unwrap(),
            Value::Timestamp(5)
        );
        assert!(Value::Bool(true).coerce_to(DataType::Int).is_err());
    }

    #[test]
    fn sql_equality_is_three_valued() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Double(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Text("a".into()).sql_cmp(&Value::Int(3)), None);
    }

    #[test]
    fn total_order_sorts_nulls_first() {
        let mut vals = [Value::Text("b".into()),
            Value::Int(10),
            Value::Null,
            Value::Bool(true),
            Value::Double(-4.5)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Double(-4.5));
        assert_eq!(vals[3], Value::Int(10));
        assert_eq!(vals[4], Value::Text("b".into()));
    }

    #[test]
    fn display_round_trip_style() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Text("job".into()).to_string(), "'job'");
        assert_eq!(Value::Bool(false).to_string(), "FALSE");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(Some(1i64)), Value::Int(1));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
    }

    #[test]
    fn approx_size_reflects_payload() {
        assert!(Value::Text("abcdef".into()).approx_size() > Value::Int(1).approx_size());
    }
}
