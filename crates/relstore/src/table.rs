//! Heap-organised tables with eagerly maintained indexes.

use crate::error::{Error, Result};
use crate::index::Index;
use crate::schema::Schema;
use crate::stats::OpStats;
use crate::tuple::{Row, RowId, StoredRowRef};
use crate::value::Value;
use std::collections::btree_map;
use std::collections::BTreeMap;

/// A single table: schema, row heap, primary-key index and secondary indexes.
///
/// Every mutation keeps all indexes consistent with the heap; the
/// property-based tests in `tests/` check this invariant under random
/// workloads. Operation counts are accumulated into the [`OpStats`] passed by
/// the caller so the database can attribute work to the statement that caused
/// it.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table schema.
    pub schema: Schema,
    rows: BTreeMap<RowId, Row>,
    next_row_id: u64,
    /// Unique index over the primary-key column, when one is declared.
    pk_index: Option<Index>,
    /// Secondary indexes, in declaration order.
    secondary: Vec<Index>,
}

impl Table {
    /// Creates an empty table for `schema`. The schema must validate.
    pub fn new(schema: Schema) -> Result<Self> {
        schema.validate()?;
        let pk_index = schema.primary_key_index().map(|idx| {
            Index::new(format!("pk_{}", schema.name), idx, true)
        });
        let mut secondary = Vec::new();
        for def in &schema.indexes {
            let col = schema.column_index(&def.column)?;
            secondary.push(Index::new(def.name.clone(), col, def.unique));
        }
        Ok(Table {
            schema,
            rows: BTreeMap::new(),
            next_row_id: 1,
            pk_index,
            secondary,
        })
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row after validation, returning its new row id.
    pub fn insert(&mut self, values: Vec<Value>, stats: &mut OpStats) -> Result<RowId> {
        let values = self.schema.validate_row(values)?;
        // Primary key must be non-null and unique.
        if let (Some(pk_idx), Some(pk_col)) = (&self.pk_index, self.schema.primary_key_index()) {
            let key = &values[pk_col];
            if key.is_null() {
                return Err(Error::constraint(format!(
                    "primary key of table {} cannot be NULL",
                    self.schema.name
                )));
            }
            if pk_idx.contains_key(key) {
                return Err(Error::constraint(format!(
                    "duplicate primary key {key} in table {}",
                    self.schema.name
                )));
            }
        }
        // Unique secondary indexes checked before any mutation so a failed
        // insert leaves the table untouched.
        for idx in &self.secondary {
            if idx.unique && idx.contains_key(&values[idx.column_idx]) {
                return Err(Error::constraint(format!(
                    "duplicate key {} for unique index {}",
                    values[idx.column_idx], idx.name
                )));
            }
        }

        let id = RowId(self.next_row_id);
        self.next_row_id += 1;
        if let Some(pk) = &mut self.pk_index {
            pk.insert(&values[pk.column_idx], id)?;
            stats.index_maintenance += 1;
        }
        for idx in &mut self.secondary {
            idx.insert(&values[idx.column_idx], id)?;
            stats.index_maintenance += 1;
        }
        self.rows.insert(id, Row::new(values));
        stats.rows_inserted += 1;
        Ok(id)
    }

    /// Inserts a row with a pre-assigned id, used only by WAL recovery.
    pub(crate) fn insert_with_id(&mut self, id: RowId, row: Row, stats: &mut OpStats) -> Result<()> {
        if self.rows.contains_key(&id) {
            return Err(Error::internal(format!(
                "recovery inserted duplicate row id {id} into {}",
                self.schema.name
            )));
        }
        if let Some(pk) = &mut self.pk_index {
            pk.insert(row.get(pk.column_idx), id)?;
        }
        for idx in &mut self.secondary {
            idx.insert(row.get(idx.column_idx), id)?;
        }
        self.next_row_id = self.next_row_id.max(id.0 + 1);
        self.rows.insert(id, row);
        stats.rows_inserted += 1;
        Ok(())
    }

    /// Returns the row with id `id`, if present.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(&id)
    }

    /// Deletes the row with id `id`, returning its prior contents.
    pub fn delete(&mut self, id: RowId, stats: &mut OpStats) -> Result<Row> {
        let row = self
            .rows
            .remove(&id)
            .ok_or_else(|| Error::not_found(format!("row {id} in table {}", self.schema.name)))?;
        if let Some(pk) = &mut self.pk_index {
            pk.remove(row.get(pk.column_idx), id);
            stats.index_maintenance += 1;
        }
        for idx in &mut self.secondary {
            idx.remove(row.get(idx.column_idx), id);
            stats.index_maintenance += 1;
        }
        stats.rows_deleted += 1;
        Ok(row)
    }

    /// Applies column assignments to the row with id `id`.
    /// Returns the row contents before and after the update.
    pub fn update(
        &mut self,
        id: RowId,
        assignments: &[(usize, Value)],
        stats: &mut OpStats,
    ) -> Result<(Row, Row)> {
        let before = self
            .rows
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("row {id} in table {}", self.schema.name)))?;
        let mut after = before.clone();
        for (col, value) in assignments {
            let col_def = self
                .schema
                .columns
                .get(*col)
                .ok_or_else(|| Error::internal(format!("column ordinal {col} out of range")))?;
            if value.is_null() && col_def.not_null {
                return Err(Error::constraint(format!(
                    "column {}.{} is NOT NULL",
                    self.schema.name, col_def.name
                )));
            }
            if !value.is_compatible_with(col_def.ty) {
                return Err(Error::type_err(format!(
                    "column {}.{} has type {}, got {}",
                    self.schema.name, col_def.name, col_def.ty, value
                )));
            }
            after.set(*col, value.coerce_to(col_def.ty)?);
        }

        // Check uniqueness constraints for any indexed column whose value changed.
        let unique_violation = |idx: &Index, after: &Row, before: &Row| -> bool {
            let new_key = after.get(idx.column_idx);
            let old_key = before.get(idx.column_idx);
            idx.unique
                && new_key.sql_eq(old_key) != Some(true)
                && idx.contains_key(new_key)
        };
        if let Some(pk) = &self.pk_index {
            if unique_violation(pk, &after, &before) {
                return Err(Error::constraint(format!(
                    "duplicate primary key {} in table {}",
                    after.get(pk.column_idx),
                    self.schema.name
                )));
            }
            if after.get(pk.column_idx).is_null() {
                return Err(Error::constraint(format!(
                    "primary key of table {} cannot be NULL",
                    self.schema.name
                )));
            }
        }
        for idx in &self.secondary {
            if unique_violation(idx, &after, &before) {
                return Err(Error::constraint(format!(
                    "duplicate key {} for unique index {}",
                    after.get(idx.column_idx),
                    idx.name
                )));
            }
        }

        // Maintain indexes whose key changed.
        if let Some(pk) = &mut self.pk_index {
            let (old_key, new_key) = (before.get(pk.column_idx), after.get(pk.column_idx));
            if old_key != new_key {
                pk.remove(old_key, id);
                pk.insert(new_key, id)?;
                stats.index_maintenance += 2;
            }
        }
        for idx in &mut self.secondary {
            let (old_key, new_key) = (before.get(idx.column_idx), after.get(idx.column_idx));
            if old_key != new_key {
                idx.remove(old_key, id);
                idx.insert(new_key, id)?;
                stats.index_maintenance += 2;
            }
        }
        self.rows.insert(id, after.clone());
        stats.rows_updated += 1;
        Ok((before, after))
    }

    /// Restores a row to exact prior contents, used by transaction rollback.
    pub(crate) fn restore(&mut self, id: RowId, row: Row) -> Result<()> {
        // Remove current index entries (if the row exists), then reinstate.
        let mut scratch = OpStats::default();
        if self.rows.contains_key(&id) {
            self.delete(id, &mut scratch)?;
        }
        self.insert_with_id(id, row, &mut scratch)
    }

    /// Full scan in row-id order, streaming borrowed rows. Nothing is cloned;
    /// the caller copies only the values it keeps.
    pub fn scan(&self, stats: &mut OpStats) -> RowIter<'_> {
        stats.rows_scanned += self.rows.len() as u64;
        stats.rows_read += self.rows.len() as u64;
        RowIter::Scan(self.rows.iter())
    }

    /// Point lookup by primary key, streaming borrowed rows. Falls back to a
    /// scan when no primary key is declared (the planner avoids calling it in
    /// that case).
    pub fn lookup_pk(&self, key: &Value, stats: &mut OpStats) -> RowIter<'_> {
        match &self.pk_index {
            Some(pk) => {
                stats.index_lookups += 1;
                let ids = pk.lookup(key);
                stats.rows_read += ids.len() as u64;
                RowIter::Ids {
                    rows: &self.rows,
                    ids: ids.into_iter(),
                }
            }
            None => self.scan(stats),
        }
    }

    /// Point lookup through the first index (primary or secondary) covering
    /// `column`, streaming borrowed rows. Returns `None` if no such index
    /// exists.
    pub fn lookup_indexed(
        &self,
        column: &str,
        key: &Value,
        stats: &mut OpStats,
    ) -> Option<RowIter<'_>> {
        let idx = self.index_on(column)?;
        stats.index_lookups += 1;
        let ids = idx.lookup(key);
        stats.rows_read += ids.len() as u64;
        Some(RowIter::Ids {
            rows: &self.rows,
            ids: ids.into_iter(),
        })
    }

    /// Range lookup through the first index (primary or secondary) covering
    /// `column`: streams the rows whose key lies in `[lo, hi]` (either bound
    /// may be open). Returns `None` if no such index exists.
    pub fn lookup_range(
        &self,
        column: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
        stats: &mut OpStats,
    ) -> Option<RowIter<'_>> {
        let idx = self.index_on(column)?;
        stats.index_lookups += 1;
        let ids = idx.range(lo, hi);
        stats.rows_read += ids.len() as u64;
        Some(RowIter::Ids {
            rows: &self.rows,
            ids: ids.into_iter(),
        })
    }

    /// The first index (primary or secondary) covering `column`, if any.
    fn index_on(&self, column: &str) -> Option<&Index> {
        let col = self.schema.column_index(column).ok()?;
        match &self.pk_index {
            Some(pk) if pk.column_idx == col => Some(pk),
            _ => self.secondary.iter().find(|i| i.column_idx == col),
        }
    }

    /// The names of the indexed columns (primary key first, then secondary
    /// indexes in declaration order), borrowed from the schema.
    pub fn indexed_columns(&self) -> impl Iterator<Item = &str> {
        self.pk_index
            .iter()
            .chain(self.secondary.iter())
            .filter_map(|idx| self.schema.columns.get(idx.column_idx))
            .map(|c| &*c.name)
    }

    /// True when some index (primary or secondary) covers `column`.
    pub fn has_index_on(&self, column: &str) -> bool {
        self.indexed_columns()
            .any(|c| c.eq_ignore_ascii_case(column))
    }

    /// Approximate resident size of the table in bytes (heap + index entries).
    pub fn approx_size(&self) -> usize {
        let heap: usize = self.rows.values().map(Row::approx_size).sum();
        let index_entries = self.pk_index.as_ref().map(|i| i.len()).unwrap_or(0)
            + self.secondary.iter().map(|i| i.len()).sum::<usize>();
        heap + index_entries * 24
    }

    /// Internal consistency check used by tests: every index entry points at a
    /// live row with the matching key, and every live row is indexed.
    pub fn check_consistency(&self) -> Result<()> {
        let mut indexes: Vec<&Index> = Vec::new();
        if let Some(pk) = &self.pk_index {
            indexes.push(pk);
        }
        indexes.extend(self.secondary.iter());
        for idx in indexes {
            let mut indexed_rows = 0usize;
            for (id, row) in &self.rows {
                let key = row.get(idx.column_idx);
                if key.is_null() {
                    continue;
                }
                indexed_rows += 1;
                if !idx.lookup(key).contains(id) {
                    return Err(Error::internal(format!(
                        "row {id} missing from index {}",
                        idx.name
                    )));
                }
            }
            if idx.len() != indexed_rows {
                return Err(Error::internal(format!(
                    "index {} has {} entries but {} rows are indexable",
                    idx.name,
                    idx.len(),
                    indexed_rows
                )));
            }
        }
        Ok(())
    }
}

/// Streaming access path over a table: either a heap scan in row-id order or
/// a set of index-qualified row ids. Yields borrowed [`StoredRowRef`]s so the
/// executor can evaluate predicates without materialising owned rows.
#[derive(Debug)]
pub enum RowIter<'a> {
    /// Full heap scan.
    Scan(btree_map::Iter<'a, RowId, Row>),
    /// Rows named by an index lookup, resolved lazily against the heap.
    Ids {
        /// The table heap the ids point into.
        rows: &'a BTreeMap<RowId, Row>,
        /// Ids produced by the index, in key order.
        ids: std::vec::IntoIter<RowId>,
    },
}

impl<'a> Iterator for RowIter<'a> {
    type Item = StoredRowRef<'a>;

    fn next(&mut self) -> Option<StoredRowRef<'a>> {
        match self {
            RowIter::Scan(iter) => iter.next().map(|(id, row)| StoredRowRef { id: *id, row }),
            RowIter::Ids { rows, ids } => {
                // An index entry always points at a live row, but stay
                // defensive: skip ids whose row vanished.
                ids.find_map(|id| rows.get(&id).map(|row| StoredRowRef { id, row }))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RowIter::Scan(iter) => iter.size_hint(),
            RowIter::Ids { ids, .. } => (0, Some(ids.len())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn machines_table() -> Table {
        let schema = Schema::new(
            "machines",
            vec![
                Column::not_null("machine_id", DataType::Int),
                Column::not_null("name", DataType::Text),
                Column::new("state", DataType::Text),
                Column::new("load", DataType::Double),
            ],
        )
        .with_primary_key("machine_id")
        .with_index("state")
        .with_unique_index("name");
        Table::new(schema).unwrap()
    }

    fn row(id: i64, name: &str, state: &str, load: f64) -> Vec<Value> {
        vec![
            Value::Int(id),
            Value::Text(name.into()),
            Value::Text(state.into()),
            Value::Double(load),
        ]
    }

    #[test]
    fn insert_and_lookup_by_pk() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), &mut stats).unwrap();
        t.insert(row(2, "node02", "busy", 0.9), &mut stats).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(stats.rows_inserted, 2);
        let found: Vec<_> = t.lookup_pk(&Value::Int(1), &mut stats).collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, id);
        assert_eq!(found[0].row.get(1), &Value::Text("node01".into()));
        t.check_consistency().unwrap();
    }

    #[test]
    fn duplicate_primary_key_rejected_atomically() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        t.insert(row(1, "node01", "idle", 0.1), &mut stats).unwrap();
        let err = t.insert(row(1, "node99", "idle", 0.1), &mut stats);
        assert!(matches!(err, Err(Error::Constraint(_))));
        assert_eq!(t.len(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        t.insert(row(1, "node01", "idle", 0.1), &mut stats).unwrap();
        assert!(t.insert(row(2, "node01", "idle", 0.1), &mut stats).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_removes_index_entries() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), &mut stats).unwrap();
        let removed = t.delete(id, &mut stats).unwrap();
        assert_eq!(removed.get(1), &Value::Text("node01".into()));
        assert!(t.is_empty());
        assert!(t
            .lookup_indexed("state", &Value::Text("idle".into()), &mut stats)
            .unwrap()
            .next()
            .is_none());
        assert!(t.delete(id, &mut stats).is_err());
        t.check_consistency().unwrap();
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), &mut stats).unwrap();
        let state_col = t.schema.column_index("state").unwrap();
        let (before, after) = t
            .update(id, &[(state_col, Value::Text("busy".into()))], &mut stats)
            .unwrap();
        assert_eq!(before.get(state_col), &Value::Text("idle".into()));
        assert_eq!(after.get(state_col), &Value::Text("busy".into()));
        assert!(t
            .lookup_indexed("state", &Value::Text("idle".into()), &mut stats)
            .unwrap()
            .next()
            .is_none());
        assert_eq!(
            t.lookup_indexed("state", &Value::Text("busy".into()), &mut stats)
                .unwrap()
                .count(),
            1
        );
        t.check_consistency().unwrap();
    }

    #[test]
    fn update_rejects_constraint_violations() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id1 = t.insert(row(1, "node01", "idle", 0.1), &mut stats).unwrap();
        t.insert(row(2, "node02", "idle", 0.1), &mut stats).unwrap();
        let name_col = t.schema.column_index("name").unwrap();
        assert!(t
            .update(id1, &[(name_col, Value::Text("node02".into()))], &mut stats)
            .is_err());
        let pk_col = t.schema.column_index("machine_id").unwrap();
        assert!(t.update(id1, &[(pk_col, Value::Int(2))], &mut stats).is_err());
        assert!(t.update(id1, &[(pk_col, Value::Null)], &mut stats).is_err());
        // Setting the same unique value on the same row is fine.
        assert!(t
            .update(id1, &[(name_col, Value::Text("node01".into()))], &mut stats)
            .is_ok());
        t.check_consistency().unwrap();
    }

    #[test]
    fn scan_returns_rows_in_id_order() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        for i in 1..=5 {
            t.insert(row(i, &format!("node{i:02}"), "idle", 0.0), &mut stats)
                .unwrap();
        }
        let rows: Vec<_> = t.scan(&mut stats).collect();
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(stats.rows_scanned, 5);
    }

    #[test]
    fn restore_round_trips_a_row() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), &mut stats).unwrap();
        let original = t.get(id).unwrap().clone();
        let state_col = t.schema.column_index("state").unwrap();
        t.update(id, &[(state_col, Value::Text("busy".into()))], &mut stats)
            .unwrap();
        t.restore(id, original.clone()).unwrap();
        assert_eq!(t.get(id), Some(&original));
        t.check_consistency().unwrap();

        // Restore also reinstates a deleted row.
        t.delete(id, &mut stats).unwrap();
        t.restore(id, original.clone()).unwrap();
        assert_eq!(t.get(id), Some(&original));
        t.check_consistency().unwrap();
    }

    #[test]
    fn has_index_on_reports_coverage() {
        let t = machines_table();
        assert!(t.has_index_on("machine_id"));
        assert!(t.has_index_on("state"));
        assert!(t.has_index_on("name"));
        assert!(!t.has_index_on("load"));
        assert!(!t.has_index_on("missing"));
    }

    #[test]
    fn approx_size_grows_with_rows() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let empty = t.approx_size();
        for i in 1..=10 {
            t.insert(row(i, &format!("node{i:02}"), "idle", 0.0), &mut stats)
                .unwrap();
        }
        assert!(t.approx_size() > empty);
    }
}
