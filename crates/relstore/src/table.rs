//! Heap-organised tables with eagerly maintained indexes and MVCC row
//! version chains.
//!
//! Every row is a [`VersionChain`]: the newest version is the *current*
//! state, older versions are retained until no live [`Snapshot`] can still
//! observe them (see [`crate::mvcc`]). Mutations run under the catalog
//! write guard and stamp versions with the writing transaction; readers pass
//! a snapshot to the access paths ([`Table::scan`], the index lookups) and
//! the [`RowIter`] resolves each chain to the version their snapshot sees.
//!
//! Indexes are **multi-version**: they cover the keys of every retained
//! version, not just the current one, so a snapshot reader probing an index
//! still finds rows whose current version has moved to a different key.
//! Entries are retired when the last version holding their key is removed
//! (rollback or vacuum). Uniqueness is therefore enforced by the table
//! against *live* rows — an index entry alone no longer implies a conflict.

use crate::error::{Error, Result};
use crate::index::Index;
use crate::mvcc::{RowVersion, Snapshot, VersionChain, COMMITTED_TXN};
use crate::plan::TableStats;
use crate::schema::{IndexDef, Schema};
use crate::stats::OpStats;
use crate::tuple::{Row, RowId, StoredRowRef};
use crate::value::Value;
use crate::wal::TxnId;
use std::collections::btree_map;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::HashSet;
use std::sync::Arc;

/// A single table: schema, versioned row heap, primary-key index and
/// secondary indexes.
///
/// Every mutation keeps all indexes consistent with the retained versions;
/// the property-based tests in `tests/` check this invariant under random
/// workloads. Operation counts are accumulated into the [`OpStats`] passed by
/// the caller so the database can attribute work to the statement that caused
/// it.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table schema.
    pub schema: Schema,
    rows: BTreeMap<RowId, VersionChain>,
    next_row_id: u64,
    /// Unique index over the primary-key column, when one is declared.
    pk_index: Option<Index>,
    /// Secondary indexes, in declaration order.
    secondary: Vec<Index>,
    /// Rows whose newest version is open (the latest-state row count).
    live: usize,
    /// Retained versions with `end` set — the vacuum backlog.
    dead_versions: usize,
    /// Rows whose chain retains at least one dead version: exactly the
    /// chains a vacuum pass must visit. Maintained by every mutation so
    /// threshold vacuum after small-row churn touches O(churned rows)
    /// chains, not O(table).
    dirty: BTreeSet<RowId>,
    /// Smallest `end` transaction id among retained dead versions (may be
    /// conservatively low after an undo; exact after each vacuum). A
    /// threshold sweep is fruitful only when the snapshot horizon exceeds
    /// this, so writers never rescan a table a long-lived snapshot pins.
    min_dead_end: u64,
    /// The `SELECT *` output column list, shared so a wildcard query's
    /// result header is one refcount bump instead of a fresh vector.
    wildcard_columns: Arc<[Arc<str>]>,
    /// Planner statistics collected by `ANALYZE`, or `None` before the first
    /// run. Shared so the planner and the `rel_table_stats` system table
    /// read them without cloning.
    stats: Option<Arc<TableStats>>,
    /// Physical version counter, bumped by every mutation that can change
    /// which rows any snapshot observes. Together with an equal [`Snapshot`]
    /// it witnesses that a cached join build side is still exact.
    version: u64,
}

impl Table {
    /// Creates an empty table for `schema`. The schema must validate.
    pub fn new(schema: Schema) -> Result<Self> {
        schema.validate()?;
        let pk_index = schema.primary_key_index().map(|idx| {
            Index::new(format!("pk_{}", schema.name), idx, true)
        });
        let mut secondary = Vec::new();
        for def in &schema.indexes {
            let col = schema.column_index(&def.column)?;
            secondary.push(Index::new(def.name.clone(), col, def.unique));
        }
        let wildcard_columns = schema.columns.iter().map(|c| c.name.clone()).collect();
        Ok(Table {
            schema,
            rows: BTreeMap::new(),
            next_row_id: 1,
            pk_index,
            secondary,
            live: 0,
            dead_versions: 0,
            dirty: BTreeSet::new(),
            min_dead_end: u64::MAX,
            wildcard_columns,
            stats: None,
            version: 0,
        })
    }

    /// The physical version counter; see the field docs.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The planner statistics collected by the last `ANALYZE`, if any.
    pub fn table_stats(&self) -> Option<&Arc<TableStats>> {
        self.stats.as_ref()
    }

    /// Installs freshly collected planner statistics. Statistics describe a
    /// moment in time, not the live table — they are not bumped by writes
    /// and go stale until the next `ANALYZE`.
    pub(crate) fn set_table_stats(&mut self, stats: TableStats) {
        self.stats = Some(Arc::new(stats));
    }

    /// Planner probe: `(distinct keys, unique)` of the first index covering
    /// `column`. Distinct keys count retained versions' keys, so this is an
    /// upper-bound estimate of live-row distinctness that needs no ANALYZE.
    pub fn index_stats_on(&self, column: &str) -> Option<(usize, bool)> {
        self.index_on(column).map(|i| (i.distinct_keys(), i.unique))
    }

    /// The interned `SELECT *` output column list (schema order, shared).
    pub fn wildcard_columns(&self) -> Arc<[Arc<str>]> {
        Arc::clone(&self.wildcard_columns)
    }

    /// Number of live rows (rows present in the latest state; old versions
    /// and tombstones awaiting vacuum are not counted).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the table holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total retained row versions, including current ones.
    pub fn total_versions(&self) -> usize {
        self.rows.values().map(VersionChain::len).sum()
    }

    /// Retained versions that have been superseded or deleted and await
    /// vacuuming.
    pub fn dead_versions(&self) -> usize {
        self.dead_versions
    }

    /// Number of chains currently retaining at least one dead version — the
    /// exact set a vacuum pass visits (the dirty-chain list).
    pub fn dirty_chain_count(&self) -> usize {
        self.dirty.len()
    }

    /// True when vacuuming with `horizon` could prune at least one version.
    /// Lets the write path's threshold trigger skip guaranteed-fruitless
    /// sweeps while a long-lived snapshot pins the whole backlog.
    pub fn vacuum_would_prune(&self, horizon: u64) -> bool {
        self.dead_versions > 0 && self.min_dead_end < horizon
    }

    /// Length of the longest version chain (1 when fully vacuumed).
    pub fn max_chain_len(&self) -> usize {
        self.rows.values().map(VersionChain::len).max().unwrap_or(0)
    }

    /// True when some *other* live row currently holds `key` in the column
    /// covered by `idx`. Dead versions retain index entries, so the entry
    /// set alone over-approximates; this resolves each candidate against its
    /// chain's current version.
    fn unique_conflict(&self, idx: &Index, key: &Value, exclude: Option<RowId>) -> bool {
        if key.is_null() {
            return false;
        }
        idx.rows_with_key(key).any(|id| {
            exclude != Some(id)
                && self
                    .rows
                    .get(&id)
                    .and_then(VersionChain::current)
                    .is_some_and(|row| row.get(idx.column_idx) == key)
        })
    }

    /// Inserts a row after validation, returning its new row id. The new
    /// version is stamped as written by `txn` and stays invisible to
    /// snapshots that do not see `txn`.
    pub fn insert(&mut self, values: Vec<Value>, txn: TxnId, stats: &mut OpStats) -> Result<RowId> {
        let values = self.schema.validate_row(values)?;
        // Primary key must be non-null and unique among live rows.
        if let (Some(pk_idx), Some(pk_col)) = (&self.pk_index, self.schema.primary_key_index()) {
            let key = &values[pk_col];
            if key.is_null() {
                return Err(Error::constraint(format!(
                    "primary key of table {} cannot be NULL",
                    self.schema.name
                )));
            }
            if self.unique_conflict(pk_idx, key, None) {
                return Err(Error::constraint(format!(
                    "duplicate primary key {key} in table {}",
                    self.schema.name
                )));
            }
        }
        // Unique secondary indexes checked before any mutation so a failed
        // insert leaves the table untouched.
        for idx in &self.secondary {
            if idx.unique && self.unique_conflict(idx, &values[idx.column_idx], None) {
                return Err(Error::constraint(format!(
                    "duplicate key {} for unique index {}",
                    values[idx.column_idx], idx.name
                )));
            }
        }

        let id = RowId(self.next_row_id);
        self.next_row_id += 1;
        if let Some(pk) = &mut self.pk_index {
            pk.insert(&values[pk.column_idx], id);
            stats.index_maintenance += 1;
        }
        for idx in &mut self.secondary {
            idx.insert(&values[idx.column_idx], id);
            stats.index_maintenance += 1;
        }
        self.rows.insert(id, VersionChain::new(txn, Row::new(values)));
        self.live += 1;
        self.version += 1;
        stats.rows_inserted += 1;
        stats.versions_created += 1;
        Ok(id)
    }

    /// Inserts a row with a pre-assigned id as an already-committed single
    /// version. Physical (non-transactional): used by WAL recovery, which
    /// replays committed history only.
    pub(crate) fn insert_with_id(&mut self, id: RowId, row: Row, stats: &mut OpStats) -> Result<()> {
        if self.rows.contains_key(&id) {
            return Err(Error::internal(format!(
                "recovery inserted duplicate row id {id} into {}",
                self.schema.name
            )));
        }
        // A duplicated or corrupt WAL must fail recovery loudly, not recover
        // silently into a state that violates unique constraints.
        if let Some(pk) = &self.pk_index {
            if self.unique_conflict(pk, row.get(pk.column_idx), None) {
                return Err(Error::constraint(format!(
                    "recovery produced duplicate primary key {} in table {}",
                    row.get(pk.column_idx),
                    self.schema.name
                )));
            }
        }
        for idx in &self.secondary {
            if idx.unique && self.unique_conflict(idx, row.get(idx.column_idx), None) {
                return Err(Error::constraint(format!(
                    "recovery produced duplicate key {} for unique index {}",
                    row.get(idx.column_idx),
                    idx.name
                )));
            }
        }
        if let Some(pk) = &mut self.pk_index {
            pk.insert(row.get(pk.column_idx), id);
        }
        for idx in &mut self.secondary {
            idx.insert(row.get(idx.column_idx), id);
        }
        self.next_row_id = self.next_row_id.max(id.0 + 1);
        self.rows.insert(id, VersionChain::new(COMMITTED_TXN, row));
        self.live += 1;
        self.version += 1;
        stats.rows_inserted += 1;
        Ok(())
    }

    /// Returns the current (latest-state) row with id `id`, if it is live.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(&id).and_then(VersionChain::current)
    }

    /// Deletes the row with id `id` on behalf of `txn`, returning its prior
    /// contents. The version is only tombstoned — snapshots that do not see
    /// `txn` keep reading it until vacuum.
    pub fn delete(&mut self, id: RowId, txn: TxnId, stats: &mut OpStats) -> Result<Row> {
        let chain = self
            .rows
            .get_mut(&id)
            .filter(|c| c.is_live())
            .ok_or_else(|| Error::not_found(format!("row {id} in table {}", self.schema.name)))?;
        let before = chain.newest().row.clone();
        chain.mark_deleted(txn);
        self.live -= 1;
        self.dead_versions += 1;
        self.dirty.insert(id);
        self.min_dead_end = self.min_dead_end.min(txn.0);
        self.version += 1;
        stats.rows_deleted += 1;
        Ok(before)
    }

    /// Applies column assignments to the row with id `id` on behalf of
    /// `txn`, pushing a new version onto its chain.
    /// Returns the row contents before and after the update.
    pub fn update(
        &mut self,
        id: RowId,
        assignments: &[(usize, Value)],
        txn: TxnId,
        stats: &mut OpStats,
    ) -> Result<(Row, Row)> {
        let before = self
            .get(id)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("row {id} in table {}", self.schema.name)))?;
        let mut after = before.clone();
        for (col, value) in assignments {
            let col_def = self
                .schema
                .columns
                .get(*col)
                .ok_or_else(|| Error::internal(format!("column ordinal {col} out of range")))?;
            if value.is_null() && col_def.not_null {
                return Err(Error::constraint(format!(
                    "column {}.{} is NOT NULL",
                    self.schema.name, col_def.name
                )));
            }
            if !value.is_compatible_with(col_def.ty) {
                return Err(Error::type_err(format!(
                    "column {}.{} has type {}, got {}",
                    self.schema.name, col_def.name, col_def.ty, value
                )));
            }
            after.set(*col, value.coerce_to(col_def.ty)?);
        }

        // Check uniqueness constraints for any indexed column whose value
        // changed, against the *live* rows (dead versions don't conflict).
        let changed = |idx: &Index| {
            after.get(idx.column_idx).sql_eq(before.get(idx.column_idx)) != Some(true)
        };
        if let Some(pk) = &self.pk_index {
            if after.get(pk.column_idx).is_null() {
                return Err(Error::constraint(format!(
                    "primary key of table {} cannot be NULL",
                    self.schema.name
                )));
            }
            if changed(pk) && self.unique_conflict(pk, after.get(pk.column_idx), Some(id)) {
                return Err(Error::constraint(format!(
                    "duplicate primary key {} in table {}",
                    after.get(pk.column_idx),
                    self.schema.name
                )));
            }
        }
        for idx in &self.secondary {
            if idx.unique && changed(idx) && self.unique_conflict(idx, after.get(idx.column_idx), Some(id)) {
                return Err(Error::constraint(format!(
                    "duplicate key {} for unique index {}",
                    after.get(idx.column_idx),
                    idx.name
                )));
            }
        }

        // Index the new version's keys. Old entries stay: snapshot readers
        // may still probe the old key and must find this row.
        if let Some(pk) = &mut self.pk_index {
            let (old_key, new_key) = (before.get(pk.column_idx), after.get(pk.column_idx));
            if old_key != new_key {
                pk.insert(new_key, id);
                stats.index_maintenance += 1;
            }
        }
        for idx in &mut self.secondary {
            let (old_key, new_key) = (before.get(idx.column_idx), after.get(idx.column_idx));
            if old_key != new_key {
                idx.insert(new_key, id);
                stats.index_maintenance += 1;
            }
        }
        let chain = self.rows.get_mut(&id).expect("checked live above");
        chain.push_version(txn, after.clone());
        self.dead_versions += 1;
        self.dirty.insert(id);
        self.min_dead_end = self.min_dead_end.min(txn.0);
        self.version += 1;
        stats.rows_updated += 1;
        stats.versions_created += 1;
        stats.max_version_chain = stats.max_version_chain.max(chain.len() as u64);
        Ok((before, after))
    }

    // --- rollback (version-aware undo) ---------------------------------------

    /// Undoes an INSERT by `txn`: removes the whole chain (every version in
    /// it was written by the aborting transaction).
    pub(crate) fn undo_insert(&mut self, id: RowId) {
        let mut scratch = OpStats::default();
        let _ = self.remove_physical(id, &mut scratch);
    }

    /// Undoes an UPDATE by `txn`: pops the newest version and re-opens the
    /// version it superseded.
    pub(crate) fn undo_update(&mut self, id: RowId, txn: TxnId) {
        let Some(chain) = self.rows.get_mut(&id) else {
            return;
        };
        let popped = chain.pop_version(txn);
        self.dead_versions -= 1;
        self.version += 1;
        if !chain.has_dead() {
            self.dirty.remove(&id);
        }
        self.retire_version_entries(id, std::slice::from_ref(&popped));
    }

    /// Undoes a DELETE by `txn`: clears the tombstone mark.
    pub(crate) fn undo_delete(&mut self, id: RowId, txn: TxnId) {
        if let Some(chain) = self.rows.get_mut(&id) {
            chain.unmark_deleted(txn);
            self.live += 1;
            self.dead_versions -= 1;
            self.version += 1;
            if !chain.has_dead() {
                self.dirty.remove(&id);
            }
        }
    }

    // --- physical operations (recovery) --------------------------------------

    /// Physically removes a row and all its versions. Used by WAL recovery
    /// (which replays committed history into flat, single-version state) and
    /// by insert rollback.
    pub(crate) fn remove_physical(&mut self, id: RowId, stats: &mut OpStats) -> Result<Row> {
        let chain = self
            .rows
            .remove(&id)
            .ok_or_else(|| Error::not_found(format!("row {id} in table {}", self.schema.name)))?;
        if chain.is_live() {
            self.live -= 1;
        }
        let newest = chain.newest().row.clone();
        let versions: Vec<RowVersion> = chain.versions().cloned().collect();
        self.dead_versions -= versions.iter().filter(|v| v.end.is_some()).count();
        self.dirty.remove(&id);
        self.retire_chain_entries(id, &versions);
        self.version += 1;
        stats.rows_deleted += 1;
        Ok(newest)
    }

    /// Restores a row to exact prior contents as a committed single version.
    /// Physical, like [`Table::remove_physical`]: used by WAL recovery redo.
    pub(crate) fn restore(&mut self, id: RowId, row: Row) -> Result<()> {
        let mut scratch = OpStats::default();
        if self.rows.contains_key(&id) {
            self.remove_physical(id, &mut scratch)?;
        }
        self.insert_with_id(id, row, &mut scratch)
    }

    /// Removes the index entries of `versions` (versions popped from the
    /// chain of `id`) whose keys no longer appear in any retained version.
    fn retire_version_entries(&mut self, id: RowId, versions: &[RowVersion]) {
        let remaining = self.rows.get(&id);
        let mut indexes: Vec<&mut Index> = Vec::with_capacity(1 + self.secondary.len());
        indexes.extend(self.pk_index.iter_mut());
        indexes.extend(self.secondary.iter_mut());
        for idx in indexes {
            for v in versions {
                let key = v.row.get(idx.column_idx);
                let still_held = remaining.is_some_and(|chain| {
                    chain.versions().any(|r| r.row.get(idx.column_idx) == key)
                });
                if !still_held {
                    idx.remove(key, id);
                }
            }
        }
    }

    /// Removes every index entry of a fully-removed chain.
    fn retire_chain_entries(&mut self, id: RowId, versions: &[RowVersion]) {
        debug_assert!(!self.rows.contains_key(&id));
        self.retire_version_entries(id, versions);
    }

    // --- vacuum ---------------------------------------------------------------

    /// Prunes versions no snapshot at or above `horizon` can observe (see
    /// [`crate::mvcc`] for the horizon rule), retiring their index entries,
    /// and drops chains left empty. Returns the number of versions pruned.
    pub fn vacuum(&mut self, horizon: u64, stats: &mut OpStats) -> usize {
        if self.dead_versions == 0 {
            return 0;
        }
        // Phase 1: prune in place, visiting only the dirty chains — the rows
        // known to retain a dead version — so a sweep after small-row churn
        // costs O(churned rows), not O(table). Recompute the exact minimum
        // `end` among the dead versions that survive (a pinning snapshot may
        // keep some), so the threshold trigger knows when a future sweep
        // could be fruitful, and shrink the dirty list to the survivors.
        let mut shrunk: Vec<(RowId, Vec<RowVersion>)> = Vec::new();
        let mut still_dirty = BTreeSet::new();
        let mut pruned_total = 0usize;
        let mut min_dead_end = u64::MAX;
        for &id in &self.dirty {
            let chain = self
                .rows
                .get_mut(&id)
                .expect("dirty chains always exist in the heap");
            let pruned = chain.vacuum(horizon);
            let mut has_dead = false;
            for v in chain.versions() {
                if let Some(end) = v.end {
                    has_dead = true;
                    min_dead_end = min_dead_end.min(end.0);
                }
            }
            if has_dead {
                still_dirty.insert(id);
            }
            if !pruned.is_empty() {
                pruned_total += pruned.len();
                shrunk.push((id, pruned));
            }
        }
        self.dirty = still_dirty;
        self.min_dead_end = min_dead_end;
        // Phase 2: drop emptied chains and retire stale index entries.
        for (id, pruned) in shrunk {
            if self.rows.get(&id).is_some_and(VersionChain::is_empty) {
                self.rows.remove(&id);
            }
            self.retire_version_entries(id, &pruned);
        }
        self.dead_versions -= pruned_total;
        if pruned_total > 0 {
            self.version += 1;
        }
        stats.versions_vacuumed += pruned_total as u64;
        pruned_total
    }

    // --- access paths ---------------------------------------------------------

    /// Full scan in row-id order, streaming the row version each chain shows
    /// to `vis`. Nothing is cloned; the caller copies only the values it
    /// keeps.
    pub fn scan<'a>(&'a self, vis: &'a Snapshot, stats: &mut OpStats) -> RowIter<'a> {
        stats.rows_scanned += self.rows.len() as u64;
        stats.rows_read += self.rows.len() as u64;
        RowIter::Scan {
            iter: self.rows.iter(),
            vis,
        }
    }

    /// Point lookup by primary key, streaming visible borrowed rows. Falls
    /// back to a scan when no primary key is declared (the planner avoids
    /// calling it in that case).
    pub fn lookup_pk<'a>(&'a self, key: &Value, vis: &'a Snapshot, stats: &mut OpStats) -> RowIter<'a> {
        match &self.pk_index {
            Some(pk) => {
                stats.index_lookups += 1;
                let set = pk.lookup_set(key);
                stats.rows_read += set.map_or(0, BTreeSet::len) as u64;
                RowIter::Ids {
                    rows: &self.rows,
                    ids: set.into(),
                    vis,
                }
            }
            None => self.scan(vis, stats),
        }
    }

    /// Point lookup through the first index (primary or secondary) covering
    /// `column`, streaming visible borrowed rows. Returns `None` if no such
    /// index exists.
    pub fn lookup_indexed<'a>(
        &'a self,
        column: &str,
        key: &Value,
        vis: &'a Snapshot,
        stats: &mut OpStats,
    ) -> Option<RowIter<'a>> {
        let idx = self.index_on(column)?;
        stats.index_lookups += 1;
        let set = idx.lookup_set(key);
        stats.rows_read += set.map_or(0, BTreeSet::len) as u64;
        Some(RowIter::Ids {
            rows: &self.rows,
            ids: set.into(),
            vis,
        })
    }

    /// Range lookup through the first index (primary or secondary) covering
    /// `column`: streams the visible rows whose key lies in `[lo, hi]`
    /// (either bound may be open). Returns `None` if no such index exists.
    pub fn lookup_range<'a>(
        &'a self,
        column: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
        vis: &'a Snapshot,
        stats: &mut OpStats,
    ) -> Option<RowIter<'a>> {
        let idx = self.index_on(column)?;
        stats.index_lookups += 1;
        let ids = idx.range(lo, hi);
        stats.rows_read += ids.len() as u64;
        Some(RowIter::Ids {
            rows: &self.rows,
            ids: IdSource::Vec(ids.into_iter()),
            vis,
        })
    }

    /// The first index (primary or secondary) covering `column`, if any.
    fn index_on(&self, column: &str) -> Option<&Index> {
        let col = self.schema.column_index(column).ok()?;
        match &self.pk_index {
            Some(pk) if pk.column_idx == col => Some(pk),
            _ => self.secondary.iter().find(|i| i.column_idx == col),
        }
    }

    /// The names of the indexed columns (primary key first, then secondary
    /// indexes in declaration order), borrowed from the schema.
    pub fn indexed_columns(&self) -> impl Iterator<Item = &str> {
        self.pk_index
            .iter()
            .chain(self.secondary.iter())
            .filter_map(|idx| self.schema.columns.get(idx.column_idx))
            .map(|c| &*c.name)
    }

    /// True when some index (primary or secondary) covers `column`.
    pub fn has_index_on(&self, column: &str) -> bool {
        self.indexed_columns()
            .any(|c| c.eq_ignore_ascii_case(column))
    }

    /// Adds a secondary index in place, covering the keys of every retained
    /// version. For a unique index, uniqueness is checked over the *live*
    /// rows first; old versions may freely share keys.
    pub(crate) fn add_index(&mut self, def: IndexDef, stats: &mut OpStats) -> Result<()> {
        let col = self.schema.column_index(&def.column)?;
        if def.unique {
            let mut seen: HashSet<&Value> = HashSet::new();
            for chain in self.rows.values() {
                if let Some(row) = chain.current() {
                    let key = row.get(col);
                    if !key.is_null() && !seen.insert(key) {
                        return Err(Error::constraint(format!(
                            "duplicate key {key} for unique index {}",
                            def.name
                        )));
                    }
                }
            }
        }
        let mut idx = Index::new(def.name.clone(), col, def.unique);
        for (id, chain) in &self.rows {
            for v in chain.versions() {
                idx.insert(v.row.get(col), *id);
                stats.index_maintenance += 1;
            }
        }
        self.schema.indexes.push(def);
        self.secondary.push(idx);
        self.version += 1;
        Ok(())
    }

    /// Approximate resident size of the table in bytes (all retained
    /// versions + index entries).
    pub fn approx_size(&self) -> usize {
        let heap: usize = self.rows.values().map(VersionChain::approx_size).sum();
        let index_entries = self.pk_index.as_ref().map(|i| i.len()).unwrap_or(0)
            + self.secondary.iter().map(|i| i.len()).sum::<usize>();
        heap + index_entries * 24
    }

    /// Internal consistency check used by tests: every retained version's
    /// key is indexed, index entry counts match the retained key sets, the
    /// version-chain invariants hold, and unique indexes have no duplicate
    /// keys among live rows.
    pub fn check_consistency(&self) -> Result<()> {
        // Chain invariants and the cached counters.
        let mut live = 0usize;
        let mut dead = 0usize;
        for (id, chain) in &self.rows {
            if chain.is_empty() {
                return Err(Error::internal(format!("row {id} has an empty chain")));
            }
            let n = chain.len();
            for (i, v) in chain.versions().enumerate() {
                if i + 1 < n && v.end.is_none() {
                    return Err(Error::internal(format!(
                        "row {id}: non-newest version without an end mark"
                    )));
                }
                if v.end.is_some() {
                    dead += 1;
                }
            }
            if chain.is_live() {
                live += 1;
            }
        }
        if live != self.live || dead != self.dead_versions {
            return Err(Error::internal(format!(
                "cached counters drifted: live {}/{} dead {}/{}",
                self.live, live, self.dead_versions, dead
            )));
        }

        // The dirty-chain list is exactly the set of chains retaining a
        // dead version — no stale entries, nothing missed.
        for id in &self.dirty {
            if !self.rows.contains_key(id) {
                return Err(Error::internal(format!(
                    "dirty-chain list names removed row {id}"
                )));
            }
        }
        for (id, chain) in &self.rows {
            let has_dead = chain.versions().any(|v| v.end.is_some());
            if has_dead != self.dirty.contains(id) {
                return Err(Error::internal(format!(
                    "dirty-chain list out of sync for row {id} (has_dead = {has_dead})"
                )));
            }
        }

        let mut indexes: Vec<&Index> = Vec::new();
        if let Some(pk) = &self.pk_index {
            indexes.push(pk);
        }
        indexes.extend(self.secondary.iter());
        for idx in indexes {
            let mut expected_entries = 0usize;
            for (id, chain) in &self.rows {
                let mut keys: Vec<&Value> = Vec::new();
                for v in chain.versions() {
                    let key = v.row.get(idx.column_idx);
                    if key.is_null() || keys.contains(&key) {
                        continue;
                    }
                    keys.push(key);
                    expected_entries += 1;
                    if !idx.lookup(key).contains(id) {
                        return Err(Error::internal(format!(
                            "row {id} version key {key} missing from index {}",
                            idx.name
                        )));
                    }
                }
            }
            if idx.len() != expected_entries {
                return Err(Error::internal(format!(
                    "index {} has {} entries but {} version keys are indexable",
                    idx.name,
                    idx.len(),
                    expected_entries
                )));
            }
            if idx.unique {
                let mut seen: HashSet<&Value> = HashSet::new();
                for chain in self.rows.values() {
                    if let Some(row) = chain.current() {
                        let key = row.get(idx.column_idx);
                        if !key.is_null() && !seen.insert(key) {
                            return Err(Error::internal(format!(
                                "unique index {} has duplicate live key {key}",
                                idx.name
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Streaming access path over a table: either a heap scan in row-id order or
/// a set of index-qualified row ids, resolved against a [`Snapshot`]. Yields
/// borrowed [`StoredRowRef`]s — the version each chain shows to the snapshot
/// — so the executor can evaluate predicates without materialising owned
/// rows.
#[derive(Debug)]
pub enum RowIter<'a> {
    /// Full heap scan.
    Scan {
        /// Chains in row-id order.
        iter: btree_map::Iter<'a, RowId, VersionChain>,
        /// The snapshot versions are resolved against.
        vis: &'a Snapshot,
    },
    /// Rows named by an index lookup, resolved lazily against the heap.
    Ids {
        /// The table heap the ids point into.
        rows: &'a BTreeMap<RowId, VersionChain>,
        /// Ids produced by the index, in ascending row-id order and free of
        /// duplicates (see [`crate::index::Index::range`]).
        ids: IdSource<'a>,
        /// The snapshot versions are resolved against.
        vis: &'a Snapshot,
    },
}

/// The ids feeding a [`RowIter::Ids`]: point lookups stream a borrowed
/// index entry set so the per-statement hot path allocates nothing; range
/// lookups own their (merged, de-duplicated) id vector.
#[derive(Debug)]
pub enum IdSource<'a> {
    /// A borrowed index entry set (point lookup).
    Set(std::iter::Copied<std::collections::btree_set::Iter<'a, RowId>>),
    /// An owned id list (range lookup, or an empty point lookup).
    Vec(std::vec::IntoIter<RowId>),
}

impl IdSource<'_> {
    /// An empty source; `Vec::new()` does not allocate.
    fn empty() -> Self {
        IdSource::Vec(Vec::new().into_iter())
    }
}

impl<'a> From<Option<&'a BTreeSet<RowId>>> for IdSource<'a> {
    fn from(set: Option<&'a BTreeSet<RowId>>) -> Self {
        match set {
            Some(s) => IdSource::Set(s.iter().copied()),
            None => IdSource::empty(),
        }
    }
}

impl Iterator for IdSource<'_> {
    type Item = RowId;

    #[inline]
    fn next(&mut self) -> Option<RowId> {
        match self {
            IdSource::Set(it) => it.next(),
            IdSource::Vec(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            IdSource::Set(it) => it.size_hint(),
            IdSource::Vec(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for IdSource<'_> {}

impl<'a> Iterator for RowIter<'a> {
    type Item = StoredRowRef<'a>;

    fn next(&mut self) -> Option<StoredRowRef<'a>> {
        match self {
            RowIter::Scan { iter, vis } => iter.find_map(|(id, chain)| {
                chain.visible(vis).map(|row| StoredRowRef { id: *id, row })
            }),
            RowIter::Ids { rows, ids, vis } => {
                // An index entry may point at a chain whose visible version
                // has a different key (or none at all); the caller re-applies
                // its filter, this just resolves visibility.
                ids.find_map(|id| {
                    rows.get(&id)
                        .and_then(|chain| chain.visible(vis))
                        .map(|row| StoredRowRef { id, row })
                })
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RowIter::Scan { iter, .. } => (0, iter.size_hint().1),
            RowIter::Ids { ids, .. } => (0, Some(ids.len())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    const SETUP: TxnId = COMMITTED_TXN;

    fn machines_table() -> Table {
        let schema = Schema::new(
            "machines",
            vec![
                Column::not_null("machine_id", DataType::Int),
                Column::not_null("name", DataType::Text),
                Column::new("state", DataType::Text),
                Column::new("load", DataType::Double),
            ],
        )
        .with_primary_key("machine_id")
        .with_index("state")
        .with_unique_index("name");
        Table::new(schema).unwrap()
    }

    fn row(id: i64, name: &str, state: &str, load: f64) -> Vec<Value> {
        vec![
            Value::Int(id),
            Value::Text(name.into()),
            Value::Text(state.into()),
            Value::Double(load),
        ]
    }

    fn latest() -> &'static Snapshot {
        Snapshot::latest()
    }

    #[test]
    fn insert_and_lookup_by_pk() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        t.insert(row(2, "node02", "busy", 0.9), SETUP, &mut stats).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(stats.rows_inserted, 2);
        assert_eq!(stats.versions_created, 2);
        let found: Vec<_> = t.lookup_pk(&Value::Int(1), latest(), &mut stats).collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, id);
        assert_eq!(found[0].row.get(1), &Value::Text("node01".into()));
        t.check_consistency().unwrap();
    }

    #[test]
    fn duplicate_primary_key_rejected_atomically() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        let err = t.insert(row(1, "node99", "idle", 0.1), SETUP, &mut stats);
        assert!(matches!(err, Err(Error::Constraint(_))));
        assert_eq!(t.len(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        assert!(t.insert(row(2, "node01", "idle", 0.1), SETUP, &mut stats).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_tombstones_and_vacuum_collects() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        let removed = t.delete(id, TxnId(5), &mut stats).unwrap();
        assert_eq!(removed.get(1), &Value::Text("node01".into()));
        assert!(t.is_empty());
        assert_eq!(t.dead_versions(), 1);
        // The tombstoned version stays visible to a snapshot predating txn 5.
        let old = Snapshot {
            high: 5,
            in_flight: Vec::new(),
            own: None,
        };
        assert_eq!(t.scan(&old, &mut stats).count(), 1);
        // ...but not to the latest view.
        assert!(t
            .lookup_indexed("state", &Value::Text("idle".into()), latest(), &mut stats)
            .unwrap()
            .next()
            .is_none());
        assert!(t.delete(id, TxnId(6), &mut stats).is_err());
        t.check_consistency().unwrap();

        // Vacuum with no live snapshots removes the chain and index entries.
        assert_eq!(t.vacuum(u64::MAX, &mut stats), 1);
        assert_eq!(t.dead_versions(), 0);
        assert_eq!(t.total_versions(), 0);
        assert_eq!(stats.versions_vacuumed, 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn update_keeps_old_version_reachable_through_indexes() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        let state_col = t.schema.column_index("state").unwrap();
        let (before, after) = t
            .update(id, &[(state_col, Value::Text("busy".into()))], TxnId(7), &mut stats)
            .unwrap();
        assert_eq!(before.get(state_col), &Value::Text("idle".into()));
        assert_eq!(after.get(state_col), &Value::Text("busy".into()));
        assert_eq!(t.max_chain_len(), 2);
        assert_eq!(stats.max_version_chain, 2);

        // Latest view: the retained 'idle' entry still names the row (the
        // index yields a superset; callers re-apply their filter), but the
        // version it resolves to carries the new key.
        let stale: Vec<_> = t
            .lookup_indexed("state", &Value::Text("idle".into()), latest(), &mut stats)
            .unwrap()
            .collect();
        assert_eq!(stale.len(), 1);
        assert_eq!(
            stale[0].row.get(state_col),
            &Value::Text("busy".into()),
            "a filter on state = 'idle' would reject the resolved version"
        );
        assert_eq!(
            t.lookup_indexed("state", &Value::Text("busy".into()), latest(), &mut stats)
                .unwrap()
                .count(),
            1
        );

        // A snapshot that does not see txn 7 reads the old version through
        // the old index key.
        let old = Snapshot {
            high: 7,
            in_flight: Vec::new(),
            own: None,
        };
        let via_old_key: Vec<_> = t
            .lookup_indexed("state", &Value::Text("idle".into()), &old, &mut stats)
            .unwrap()
            .collect();
        assert_eq!(via_old_key.len(), 1);
        assert_eq!(via_old_key[0].row.get(state_col), &Value::Text("idle".into()));
        t.check_consistency().unwrap();

        // Vacuum prunes the superseded version and retires the stale entry.
        assert_eq!(t.vacuum(u64::MAX, &mut stats), 1);
        assert_eq!(t.max_chain_len(), 1);
        assert!(t
            .lookup_indexed("state", &Value::Text("idle".into()), &old, &mut stats)
            .unwrap()
            .next()
            .is_none());
        t.check_consistency().unwrap();
    }

    #[test]
    fn vacuum_would_prune_tracks_the_horizon() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        assert!(!t.vacuum_would_prune(u64::MAX), "no dead versions yet");
        let state_col = t.schema.column_index("state").unwrap();
        t.update(RowId(1), &[(state_col, Value::Text("busy".into()))], TxnId(5), &mut stats)
            .unwrap();
        // The version ended by txn 5 is prunable only once the horizon
        // passes 5 — a sweep below that is guaranteed fruitless.
        assert!(!t.vacuum_would_prune(5));
        assert!(t.vacuum_would_prune(6));
        assert_eq!(t.vacuum(5, &mut stats), 0, "pinned: nothing pruned");
        assert_eq!(t.vacuum(6, &mut stats), 1);
        assert!(!t.vacuum_would_prune(u64::MAX), "backlog fully reclaimed");
        t.check_consistency().unwrap();
    }

    #[test]
    fn vacuum_visits_only_dirty_chains() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        for i in 1..=500 {
            t.insert(row(i, &format!("node{i:03}"), "idle", 0.0), SETUP, &mut stats)
                .unwrap();
        }
        assert_eq!(t.dirty_chain_count(), 0, "a fresh table has no dead versions");

        // Churn a handful of rows: 3 updates and 1 delete out of 500.
        let load_col = t.schema.column_index("load").unwrap();
        for (i, id) in [2u64, 40, 99].iter().enumerate() {
            t.update(RowId(*id), &[(load_col, Value::Double(0.5))], TxnId(10 + i as u64), &mut stats)
                .unwrap();
        }
        t.delete(RowId(7), TxnId(20), &mut stats).unwrap();
        assert_eq!(
            t.dirty_chain_count(),
            4,
            "only the churned chains are on the vacuum worklist, not all 500"
        );
        assert_eq!(t.dead_versions(), 4);
        t.check_consistency().unwrap();

        // The sweep prunes exactly the churned chains and empties the list.
        assert_eq!(t.vacuum(u64::MAX, &mut stats), 4);
        assert_eq!(t.dirty_chain_count(), 0);
        assert_eq!(t.dead_versions(), 0);
        assert_eq!(t.len(), 499);
        t.check_consistency().unwrap();

        // A pinning horizon keeps a chain on the worklist until it clears.
        t.update(RowId(3), &[(load_col, Value::Double(0.9))], TxnId(30), &mut stats)
            .unwrap();
        assert_eq!(t.vacuum(30, &mut stats), 0, "pinned: nothing pruned");
        assert_eq!(t.dirty_chain_count(), 1, "the pinned chain stays dirty");
        assert_eq!(t.vacuum(31, &mut stats), 1);
        assert_eq!(t.dirty_chain_count(), 0);
        t.check_consistency().unwrap();
    }

    #[test]
    fn update_rejects_constraint_violations() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id1 = t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        t.insert(row(2, "node02", "idle", 0.1), SETUP, &mut stats).unwrap();
        let name_col = t.schema.column_index("name").unwrap();
        assert!(t
            .update(id1, &[(name_col, Value::Text("node02".into()))], TxnId(3), &mut stats)
            .is_err());
        let pk_col = t.schema.column_index("machine_id").unwrap();
        assert!(t.update(id1, &[(pk_col, Value::Int(2))], TxnId(3), &mut stats).is_err());
        assert!(t.update(id1, &[(pk_col, Value::Null)], TxnId(3), &mut stats).is_err());
        // Setting the same unique value on the same row is fine.
        assert!(t
            .update(id1, &[(name_col, Value::Text("node01".into()))], TxnId(3), &mut stats)
            .is_ok());
        t.check_consistency().unwrap();
    }

    #[test]
    fn dead_versions_do_not_block_unique_reuse() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        // Delete (tombstone) the row; its unique name entry is retained for
        // old snapshots, but a new live row may reuse the name.
        t.delete(id, TxnId(2), &mut stats).unwrap();
        t.insert(row(5, "node01", "idle", 0.0), TxnId(3), &mut stats).unwrap();
        assert_eq!(t.len(), 1);
        t.check_consistency().unwrap();

        // Same through update: renaming away frees the old name for others.
        let name_col = t.schema.column_index("name").unwrap();
        let live_id = RowId(2);
        t.update(live_id, &[(name_col, Value::Text("node09".into()))], TxnId(4), &mut stats)
            .unwrap();
        t.insert(row(6, "node01", "idle", 0.0), TxnId(5), &mut stats).unwrap();
        t.check_consistency().unwrap();
    }

    #[test]
    fn undo_round_trips_restore_prior_versions() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        let state_col = t.schema.column_index("state").unwrap();
        let txn = TxnId(9);

        // Update then undo: back to the original version, index clean.
        t.update(id, &[(state_col, Value::Text("busy".into()))], txn, &mut stats)
            .unwrap();
        t.undo_update(id, txn);
        assert_eq!(t.get(id).unwrap().get(state_col), &Value::Text("idle".into()));
        assert_eq!(t.max_chain_len(), 1);
        t.check_consistency().unwrap();

        // Delete then undo: the row is live again.
        t.delete(id, txn, &mut stats).unwrap();
        t.undo_delete(id, txn);
        assert_eq!(t.len(), 1);
        t.check_consistency().unwrap();

        // Insert then undo: the chain is gone entirely.
        let id2 = t.insert(row(2, "node02", "idle", 0.2), txn, &mut stats).unwrap();
        t.undo_insert(id2);
        assert_eq!(t.len(), 1);
        assert!(t.get(id2).is_none());
        t.check_consistency().unwrap();
    }

    #[test]
    fn scan_returns_rows_in_id_order() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        for i in 1..=5 {
            t.insert(row(i, &format!("node{i:02}"), "idle", 0.0), SETUP, &mut stats)
                .unwrap();
        }
        let rows: Vec<_> = t.scan(latest(), &mut stats).collect();
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(stats.rows_scanned, 5);
    }

    #[test]
    fn restore_round_trips_a_row() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let id = t.insert(row(1, "node01", "idle", 0.1), SETUP, &mut stats).unwrap();
        let original = t.get(id).unwrap().clone();
        let state_col = t.schema.column_index("state").unwrap();
        t.update(id, &[(state_col, Value::Text("busy".into()))], TxnId(2), &mut stats)
            .unwrap();
        t.restore(id, original.clone()).unwrap();
        assert_eq!(t.get(id), Some(&original));
        assert_eq!(t.max_chain_len(), 1, "restore flattens the chain");
        t.check_consistency().unwrap();

        // Restore also reinstates a physically removed row.
        t.remove_physical(id, &mut stats).unwrap();
        t.restore(id, original.clone()).unwrap();
        assert_eq!(t.get(id), Some(&original));
        t.check_consistency().unwrap();
    }

    #[test]
    fn has_index_on_reports_coverage() {
        let t = machines_table();
        assert!(t.has_index_on("machine_id"));
        assert!(t.has_index_on("state"));
        assert!(t.has_index_on("name"));
        assert!(!t.has_index_on("load"));
        assert!(!t.has_index_on("missing"));
    }

    #[test]
    fn approx_size_grows_with_rows_and_versions() {
        let mut t = machines_table();
        let mut stats = OpStats::default();
        let empty = t.approx_size();
        for i in 1..=10 {
            t.insert(row(i, &format!("node{i:02}"), "idle", 0.0), SETUP, &mut stats)
                .unwrap();
        }
        let flat = t.approx_size();
        assert!(flat > empty);
        let load_col = t.schema.column_index("load").unwrap();
        t.update(RowId(1), &[(load_col, Value::Double(0.5))], TxnId(2), &mut stats)
            .unwrap();
        assert!(t.approx_size() > flat, "retained versions take space");
    }
}
