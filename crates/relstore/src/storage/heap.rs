//! Paged table heaps: the durable, buffer-pool-mediated mirror of every
//! committed row.
//!
//! The in-memory [`Table`](crate::table::Table) (MVCC chains, indexes)
//! remains the query representation; this engine keeps an equivalent row
//! heap on pages so the dataset survives reopen without replaying the whole
//! history. The coupling is **no-steal**: uncommitted changes never reach a
//! page. Each transaction's row-level log records are buffered
//! ([`PagedEngine::capture`]) and applied to pages only at commit
//! ([`PagedEngine::apply_commit`]) — a rollback just discards the buffer,
//! and a crash can never leave uncommitted bytes in the page file.
//!
//! [`PagedEngine::apply_record`] is deliberately **idempotent** (insert is
//! an upsert, delete ignores an absent row): commit-time application and
//! recovery's WAL-suffix replay share the same code path, and replaying a
//! record whose effect already reached the pages is harmless.
//!
//! Rows larger than a page spill to a chain of overflow pages; the heap
//! cell then holds a stub pointing at the chain head. Chain pages are
//! written through to the store at creation and are immutable afterwards,
//! so a durable stub always finds its chain on disk.
//!
//! Freed pages (dropped tables, released overflow chains) are **not**
//! reused immediately: they sit in a pending list until the next
//! checkpoint flush. Reusing a page before the operation that freed it is
//! durable could leave a crashed page file with a stale cell pointing into
//! an unrelated page; deferring reuse until a flush has made every
//! deletion durable closes that window, and [`PagedEngine::load`] reclaims
//! whatever a crash stranded (stale stubs, orphaned chains) knowing the
//! WAL suffix always carries the covering records.

use super::buffer::BufferPool;
use super::page::{self, CellBody, PageKind};
use crate::error::{Error, Result};
use crate::io::codec::{put_row, Reader};
use crate::stats::OpStats;
use crate::tuple::{Row, RowId};
use crate::wal::{LogRecord, TxnId, Wal};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Where one row's cell lives: page number and slot index.
type RowSlot = (u64, u16);

/// Per-table heap state: which pages the table owns, and where each row is.
#[derive(Debug, Default)]
struct HeapTable {
    /// Pages owned by this table, in allocation order. Inserts try the last
    /// one first; earlier pages are refilled only via slot reuse after the
    /// last page fills (kept simple deliberately — see module docs).
    pages: Vec<u64>,
    rows: HashMap<RowId, RowSlot>,
}

/// The paged-heap engine: buffer pool + per-table page directories +
/// per-transaction pending buffers.
#[derive(Debug)]
pub(crate) struct PagedEngine {
    pool: BufferPool,
    tables: HashMap<String, HeapTable>,
    /// Reusable page numbers (freed by drops and released overflow chains,
    /// already covered by a durable flush).
    free: Vec<u64>,
    /// Pages freed since the last checkpoint flush: allocatable only once
    /// [`PagedEngine::checkpoint_flush`] has made the freeing deletions
    /// durable (see module docs).
    pending_free: Vec<u64>,
    /// No-steal buffers: row-level records per open transaction.
    pending: HashMap<TxnId, Vec<LogRecord>>,
    /// Live overflow pages right now (reported as a high-water gauge).
    overflow_pages: u64,
    /// First apply failure: the page image may be ahead of or behind the
    /// heap directory, so every later mutation reports the original error.
    poisoned: Option<Error>,
}

impl PagedEngine {
    pub(crate) fn new(pool: BufferPool) -> PagedEngine {
        PagedEngine {
            pool,
            tables: HashMap::new(),
            free: Vec::new(),
            pending_free: Vec::new(),
            pending: HashMap::new(),
            overflow_pages: 0,
            poisoned: None,
        }
    }

    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(e) => Err(Error::io(format!(
                "paged engine poisoned by earlier failure: {e}"
            ))),
            None => Ok(()),
        }
    }

    /// The buffer pool (store accessors for tests and recovery).
    pub(crate) fn pool(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Live overflow pages right now.
    pub(crate) fn overflow_pages(&self) -> u64 {
        self.overflow_pages
    }

    // --- no-steal pending buffers ------------------------------------

    /// Buffers a transaction's row-level records until commit.
    pub(crate) fn capture(&mut self, txn: TxnId, records: &[LogRecord]) {
        self.pending
            .entry(txn)
            .or_default()
            .extend(records.iter().cloned());
    }

    /// Drops a transaction's buffer (rollback): nothing reached the pages.
    pub(crate) fn discard(&mut self, txn: TxnId) {
        self.pending.remove(&txn);
    }

    /// Applies a committed transaction's buffered records to the pages.
    /// Called after the Commit record is appended to the WAL; evictions
    /// inside flush the WAL first (see [`BufferPool`]), preserving
    /// WAL-before-data. An error poisons the engine — the commit must not
    /// be acknowledged.
    pub(crate) fn apply_commit(
        &mut self,
        txn: TxnId,
        wal: &mut Wal,
        stats: &mut OpStats,
    ) -> Result<()> {
        self.check_poisoned()?;
        let Some(records) = self.pending.remove(&txn) else {
            return Ok(()); // read-only commit
        };
        for rec in &records {
            if let Err(e) = self.apply_record(rec, wal, stats) {
                if self.poisoned.is_none() {
                    self.poisoned = Some(e.clone());
                }
                return Err(e);
            }
        }
        stats.overflow_pages = stats.overflow_pages.max(self.overflow_pages());
        Ok(())
    }

    /// Applies one row-level record to the pages, idempotently: shared by
    /// commit-time application and recovery replay.
    pub(crate) fn apply_record(
        &mut self,
        rec: &LogRecord,
        wal: &mut Wal,
        stats: &mut OpStats,
    ) -> Result<()> {
        match rec {
            LogRecord::CreateTable { schema, .. } => {
                self.create_table(&schema.name);
                Ok(())
            }
            LogRecord::DropTable { table, .. } => self.drop_table(table, wal, stats),
            LogRecord::Insert {
                table, row_id, row, ..
            } => self.upsert(table, *row_id, row, wal, stats),
            LogRecord::Update {
                table,
                row_id,
                after,
                ..
            } => self.upsert(table, *row_id, after, wal, stats),
            LogRecord::Delete { table, row_id, .. } => self.remove(table, *row_id, wal, stats),
            LogRecord::Batch { changes, .. } => {
                for c in changes {
                    self.apply_record(c, wal, stats)?;
                }
                Ok(())
            }
            // Transaction markers and checkpoints carry no row data.
            LogRecord::Begin { .. }
            | LogRecord::Commit { .. }
            | LogRecord::Abort { .. }
            | LogRecord::Checkpoint { .. } => Ok(()),
        }
    }

    // --- heap operations ----------------------------------------------

    /// Registers a table heap (idempotent; pages are allocated lazily).
    pub(crate) fn create_table(&mut self, name: &str) {
        self.tables.entry(name.to_string()).or_default();
    }

    fn alloc_page(&mut self) -> u64 {
        self.free
            .pop()
            .unwrap_or_else(|| self.pool.store().allocate())
    }

    /// Largest row payload that still fits inline in a fresh page of this
    /// table (header + name + one slot entry + the cell's id/flag prefix).
    fn max_inline(&self, name_len: usize) -> usize {
        self.pool.page_size() - page::PAGE_HEADER - name_len - 4 - 9
    }

    /// Inserts or replaces `row` under `row_id`. The replace path first
    /// removes the old cell (releasing any overflow chain), so the heap
    /// never holds two cells for one row id.
    pub(crate) fn upsert(
        &mut self,
        table: &str,
        row_id: RowId,
        row: &Row,
        wal: &mut Wal,
        stats: &mut OpStats,
    ) -> Result<()> {
        if self
            .tables
            .get(table)
            .is_some_and(|t| t.rows.contains_key(&row_id))
        {
            self.remove(table, row_id, wal, stats)?;
        }
        self.create_table(table);

        let mut payload = Vec::new();
        put_row(&mut payload, row);
        let cell = if payload.len() > self.max_inline(table.len()) {
            // Spill the payload to an overflow chain, built last-to-first
            // so each page links to the next with a single pass.
            let chunk_size = page::overflow_capacity(self.pool.page_size());
            let mut next = 0u64;
            let mut chain = Vec::new();
            for chunk in payload.chunks(chunk_size).rev() {
                let page_no = self.alloc_page();
                let idx = self.pool.create(page_no, wal, stats)?;
                page::init_overflow(self.pool.frame_mut(idx), chunk, next);
                next = page_no;
                chain.push(page_no);
                self.overflow_pages += 1;
            }
            // Written through immediately: eviction can make the heap page
            // holding the stub durable at any moment, and recovery must
            // never find a stub whose chain is not on disk. Chain pages are
            // immutable after this, so the early write is never wasted.
            self.pool.flush_pages(&chain, wal, stats)?;
            page::encode_overflow_stub(row_id, next, payload.len() as u32)
        } else {
            page::encode_inline(row_id, row)
        };

        // Place the cell: last page of the table if it fits, else a fresh
        // page (reusing the freelist before growing the file).
        let last = self.tables[table].pages.last().copied();
        let (page_no, idx) = match last {
            Some(p) => {
                let idx = self.pool.acquire(p, wal, stats)?;
                if page::can_fit(self.pool.frame(idx), cell.len()) {
                    (p, idx)
                } else {
                    self.fresh_heap_page(table, wal, stats)?
                }
            }
            None => self.fresh_heap_page(table, wal, stats)?,
        };
        let slot = page::insert(self.pool.frame_mut(idx), &cell).ok_or_else(|| {
            Error::internal(format!(
                "row cell of {} byte(s) does not fit an empty page",
                cell.len()
            ))
        })?;
        let heap = self.tables.get_mut(table).expect("created above");
        heap.rows.insert(row_id, (page_no, slot));
        stats.overflow_pages = stats.overflow_pages.max(self.overflow_pages());
        Ok(())
    }

    fn fresh_heap_page(
        &mut self,
        table: &str,
        wal: &mut Wal,
        stats: &mut OpStats,
    ) -> Result<(u64, usize)> {
        let page_no = self.alloc_page();
        let idx = self.pool.create(page_no, wal, stats)?;
        page::init(self.pool.frame_mut(idx), PageKind::Heap, table);
        self.tables
            .get_mut(table)
            .expect("caller registered the table")
            .pages
            .push(page_no);
        Ok((page_no, idx))
    }

    /// Deletes `row_id`'s cell if present (idempotent), releasing its
    /// overflow chain back to the freelist.
    pub(crate) fn remove(
        &mut self,
        table: &str,
        row_id: RowId,
        wal: &mut Wal,
        stats: &mut OpStats,
    ) -> Result<()> {
        let Some(&(page_no, slot)) = self.tables.get(table).and_then(|t| t.rows.get(&row_id))
        else {
            return Ok(());
        };
        let idx = self.pool.acquire(page_no, wal, stats)?;
        let (_, body) = page::decode_cell(page::record(self.pool.frame(idx), slot)?)?;
        page::delete(self.pool.frame_mut(idx), slot);
        if let CellBody::Overflow { head, .. } = body {
            self.free_overflow_chain(head, wal, stats)?;
        }
        self.tables
            .get_mut(table)
            .expect("checked above")
            .rows
            .remove(&row_id);
        Ok(())
    }

    fn free_overflow_chain(
        &mut self,
        head: u64,
        wal: &mut Wal,
        stats: &mut OpStats,
    ) -> Result<()> {
        let mut p = head;
        while p != 0 {
            let idx = self.pool.acquire(p, wal, stats)?;
            let next = page::next(self.pool.frame(idx));
            page::init(self.pool.frame_mut(idx), PageKind::Free, "");
            self.pending_free.push(p);
            self.overflow_pages = self.overflow_pages.saturating_sub(1);
            p = next;
        }
        Ok(())
    }

    /// Drops a table heap: every owned page (and every overflow chain its
    /// rows held) is marked Free and queued for reuse after the next
    /// checkpoint flush. Idempotent.
    pub(crate) fn drop_table(
        &mut self,
        table: &str,
        wal: &mut Wal,
        stats: &mut OpStats,
    ) -> Result<()> {
        let Some(heap) = self.tables.remove(table) else {
            return Ok(());
        };
        let mut chains = Vec::new();
        for &page_no in &heap.pages {
            let idx = self.pool.acquire(page_no, wal, stats)?;
            for slot in 0..page::slot_count(self.pool.frame(idx)) {
                let Ok(cell) = page::record(self.pool.frame(idx), slot) else {
                    continue; // dead slot
                };
                if let (_, CellBody::Overflow { head, .. }) = page::decode_cell(cell)? {
                    chains.push(head);
                }
            }
            page::init(self.pool.frame_mut(idx), PageKind::Free, "");
            self.pending_free.push(page_no);
        }
        for head in chains {
            self.free_overflow_chain(head, wal, stats)?;
        }
        Ok(())
    }

    // --- checkpoint & recovery ----------------------------------------

    /// Flushes every dirty frame in one journaled batch (WAL first). After
    /// this the page file is self-contained up to the flushed state, so the
    /// pages freed since the last flush become safely reusable: every
    /// deletion that freed them is durable now.
    pub(crate) fn checkpoint_flush(&mut self, wal: &mut Wal, stats: &mut OpStats) -> Result<()> {
        self.check_poisoned()?;
        if let Err(e) = self.pool.flush_all(wal, stats) {
            if self.poisoned.is_none() {
                self.poisoned = Some(e.clone());
            }
            return Err(e);
        }
        self.free.append(&mut self.pending_free);
        Ok(())
    }

    /// Scans the page file at open: verifies every page's checksum, builds
    /// the heap directory (pages, row slots, freelist, overflow count), and
    /// returns the decoded rows per table for the recovery to bulk-load.
    /// Reads go straight through the store — the pool stays cold.
    ///
    /// A crash can strand inconsistencies *between* pages even though every
    /// page verifies: a duplicate cell for a row whose relocation only half
    /// flushed, a stub whose freed chain out-flushed the stub's deletion, an
    /// overflow chain no stub reaches. Every one of these is provably
    /// covered by the committed WAL suffix (the last checkpoint flushed a
    /// mutually consistent image, and anything later has its records still
    /// in the log), so the scan repairs them — dropping the stale cell,
    /// reclaiming the stranded pages — and leaves the replay to restore the
    /// authoritative row state. Intra-page damage is still a typed
    /// [`Error::Corruption`](crate::error::Error).
    pub(crate) fn load(
        &mut self,
        wal: &mut Wal,
        stats: &mut OpStats,
    ) -> Result<BTreeMap<String, Vec<(RowId, Row)>>> {
        let page_size = self.pool.page_size();
        let page_count = self.pool.store().page_count();
        let mut buf = vec![0u8; page_size];
        let mut rows: BTreeMap<String, BTreeMap<RowId, Row>> = BTreeMap::new();
        // Overflow stubs are resolved in a second pass: the chain pages may
        // sit anywhere relative to the heap page that references them.
        let mut stubs: Vec<(String, RowId, u64, u32)> = Vec::new();
        let mut overflow_seen: HashSet<u64> = HashSet::new();
        let mut ghosts: Vec<RowSlot> = Vec::new();
        for page_no in 1..page_count {
            if !self.pool.store().read_page_if_written(page_no, &mut buf)? {
                // An allocated-but-never-flushed hole: reclaimable space.
                self.pending_free.push(page_no);
                continue;
            }
            stats.pages_read += 1;
            match page::kind(&buf)? {
                // Everything reclaimed at open waits out one checkpoint
                // flush like any other freed page: a stale stub this scan is
                // about to drop may still reference it durably, and reuse
                // must not out-flush that repair.
                PageKind::Free => self.pending_free.push(page_no),
                PageKind::Overflow => {
                    overflow_seen.insert(page_no);
                }
                PageKind::Meta => {
                    return Err(Error::corruption(format!(
                        "unexpected meta page at page {page_no}"
                    )))
                }
                PageKind::Heap => {
                    let name = page::table_name(&buf)?.to_string();
                    let heap = self.tables.entry(name.clone()).or_default();
                    heap.pages.push(page_no);
                    for slot in 0..page::slot_count(&buf) {
                        let Ok(cell) = page::record(&buf, slot) else {
                            continue; // dead slot
                        };
                        let (row_id, body) = page::decode_cell(cell)?;
                        if heap.rows.contains_key(&row_id) {
                            // A half-flushed relocation left two cells for
                            // this row: keep the first, drop this one — the
                            // suffix replay re-applies the authoritative
                            // value either way.
                            ghosts.push((page_no, slot));
                            continue;
                        }
                        heap.rows.insert(row_id, (page_no, slot));
                        match body {
                            CellBody::Inline(row) => {
                                rows.entry(name.clone()).or_default().insert(row_id, row);
                            }
                            CellBody::Overflow { head, total } => {
                                stubs.push((name.clone(), row_id, head, total))
                            }
                        }
                    }
                    rows.entry(name).or_default();
                }
            }
        }
        let mut visited: HashSet<u64> = HashSet::new();
        for (name, row_id, head, total) in stubs {
            // Chain pages join `visited` only when the whole walk succeeds,
            // so a stale chain's surviving pages fall out as orphans below.
            let mut walk = Vec::new();
            let mut payload = Vec::with_capacity(total as usize);
            let mut stale = false;
            let mut p = head;
            while p != 0 {
                if !overflow_seen.contains(&p) {
                    // The chain was freed after this stub's page last
                    // flushed: the stub is stale, and the committed suffix
                    // carries the delete (or relocation) that freed it.
                    stale = true;
                    break;
                }
                self.pool.store().read_page(p, &mut buf)?;
                stats.pages_read += 1;
                payload.extend_from_slice(page::overflow_chunk(&buf)?);
                walk.push(p);
                p = page::next(&buf);
            }
            if stale {
                let heap = self.tables.get_mut(&name).expect("scanned above");
                ghosts.push(heap.rows.remove(&row_id).expect("registered above"));
                rows.entry(name).or_default().remove(&row_id);
                continue;
            }
            if payload.len() != total as usize {
                return Err(Error::corruption(format!(
                    "overflow chain of row {} in '{name}' holds {} byte(s), stub claims {total}",
                    row_id.0,
                    payload.len()
                )));
            }
            visited.extend(walk);
            let row = Reader::new(&payload).row()?;
            rows.entry(name).or_default().insert(row_id, row);
        }
        // Overflow pages no surviving stub reaches are stranded — their stub
        // was dropped above, or its deletion out-flushed the chain's free.
        for p in overflow_seen {
            if visited.contains(&p) {
                self.overflow_pages += 1;
            } else {
                self.pending_free.push(p);
            }
        }
        // Physically drop the stale cells so they cannot resurface at the
        // next open (flushed with everything else at the next checkpoint).
        for (page_no, slot) in ghosts {
            let idx = self.pool.acquire(page_no, wal, stats)?;
            page::delete(self.pool.frame_mut(idx), slot);
        }
        stats.overflow_pages = stats.overflow_pages.max(self.overflow_pages());
        Ok(rows
            .into_iter()
            .map(|(name, rows)| (name, rows.into_iter().collect()))
            .collect())
    }

    /// Resets the page file to empty heaps: every data page is reinitialised
    /// as Free and the directory cleared. Used when recovery decides the WAL
    /// is authoritative (legacy log with a full-row checkpoint) and the page
    /// file must be rebuilt from it.
    pub(crate) fn clear_all(&mut self, wal: &mut Wal, stats: &mut OpStats) -> Result<()> {
        let page_count = self.pool.store().page_count();
        self.pool.clear();
        self.tables.clear();
        self.free.clear();
        self.pending_free.clear();
        self.overflow_pages = 0;
        for page_no in 1..page_count {
            let idx = self.pool.create(page_no, wal, stats)?;
            page::init(self.pool.frame_mut(idx), PageKind::Free, "");
            self.free.push(page_no);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{DurabilityPolicy, Failpoints, MemDevice};
    use crate::storage::device::MemBlockDevice;
    use crate::storage::pagestore::PageStore;
    use crate::value::Value;
    use std::sync::Arc;

    fn engine(pool_pages: usize) -> (PagedEngine, Wal) {
        let store = PageStore::open(
            Box::new(MemBlockDevice::new()),
            Box::new(MemDevice::new()),
            Arc::new(Failpoints::new()),
            512,
        )
        .unwrap();
        let wal = Wal::open_device(
            Box::new(MemDevice::new()),
            DurabilityPolicy::Always,
            Arc::new(Failpoints::new()),
            &mut OpStats::default(),
        )
        .unwrap();
        (PagedEngine::new(BufferPool::new(store, pool_pages)), wal)
    }

    fn reopen(engine: &mut PagedEngine) -> (PagedEngine, BTreeMap<String, Vec<(RowId, Row)>>) {
        let pages = engine.pool().store().durable_page_bytes().unwrap();
        let journal = engine.pool().store().durable_journal_bytes().unwrap();
        let store = PageStore::open(
            Box::new(MemBlockDevice::with_contents(pages)),
            Box::new(MemDevice::with_contents(journal)),
            Arc::new(Failpoints::new()),
            512,
        )
        .unwrap();
        let mut fresh = PagedEngine::new(BufferPool::new(store, 4));
        let mut wal = Wal::open_device(
            Box::new(MemDevice::new()),
            DurabilityPolicy::Always,
            Arc::new(Failpoints::new()),
            &mut OpStats::default(),
        )
        .unwrap();
        let loaded = fresh.load(&mut wal, &mut OpStats::default()).unwrap();
        (fresh, loaded)
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::Text(format!("v{i}").into())])
    }

    #[test]
    fn upsert_remove_survive_reopen() {
        let (mut eng, mut wal) = engine(4);
        let mut stats = OpStats::default();
        eng.create_table("jobs");
        for i in 0..50 {
            eng.upsert("jobs", RowId(i), &row(i as i64), &mut wal, &mut stats)
                .unwrap();
        }
        eng.remove("jobs", RowId(7), &mut wal, &mut stats).unwrap();
        eng.upsert("jobs", RowId(3), &row(333), &mut wal, &mut stats)
            .unwrap();
        eng.checkpoint_flush(&mut wal, &mut stats).unwrap();

        let (_, loaded) = reopen(&mut eng);
        let jobs = &loaded["jobs"];
        assert_eq!(jobs.len(), 49);
        assert!(!jobs.iter().any(|(id, _)| *id == RowId(7)));
        let updated = jobs.iter().find(|(id, _)| *id == RowId(3)).unwrap();
        assert_eq!(updated.1.get(0), &Value::Int(333));
    }

    #[test]
    fn oversized_rows_take_the_overflow_path() {
        let (mut eng, mut wal) = engine(4);
        let mut stats = OpStats::default();
        eng.create_table("blobs");
        let big = Row::new(vec![Value::Int(1), Value::Text("x".repeat(2000).into())]);
        eng.upsert("blobs", RowId(1), &big, &mut wal, &mut stats)
            .unwrap();
        assert!(eng.overflow_pages() >= 4, "2000B over 488B chunks");
        assert!(stats.overflow_pages >= 4, "gauge recorded");
        eng.checkpoint_flush(&mut wal, &mut stats).unwrap();

        let (mut eng2, loaded) = reopen(&mut eng);
        assert_eq!(loaded["blobs"].len(), 1);
        assert_eq!(loaded["blobs"][0].1.get(1), &Value::Text("x".repeat(2000).into()));
        assert_eq!(eng2.overflow_pages(), eng.overflow_pages());

        // Deleting the row releases the chain — allocatable only after the
        // next checkpoint flush makes the deletion durable.
        let before_pending = eng2.pending_free.len();
        eng2.remove("blobs", RowId(1), &mut wal, &mut stats).unwrap();
        assert_eq!(eng2.overflow_pages(), 0);
        assert!(eng2.pending_free.len() > before_pending);
        let before_free = eng2.free.len();
        eng2.checkpoint_flush(&mut wal, &mut stats).unwrap();
        assert!(eng2.free.len() > before_free);
        assert!(eng2.pending_free.is_empty());
    }

    #[test]
    fn drop_table_frees_pages_for_reuse() {
        let (mut eng, mut wal) = engine(4);
        let mut stats = OpStats::default();
        eng.create_table("a");
        for i in 0..30 {
            eng.upsert("a", RowId(i), &row(i as i64), &mut wal, &mut stats)
                .unwrap();
        }
        let grown = eng.pool().store().page_count();
        eng.drop_table("a", &mut wal, &mut stats).unwrap();
        assert!(eng.tables.is_empty());
        // Freed pages become allocatable once a checkpoint flush has made
        // the drop durable; after that a new table reuses them and the file
        // does not grow.
        eng.checkpoint_flush(&mut wal, &mut stats).unwrap();
        eng.create_table("b");
        for i in 0..30 {
            eng.upsert("b", RowId(i), &row(i as i64), &mut wal, &mut stats)
                .unwrap();
        }
        assert_eq!(eng.pool().store().page_count(), grown);
        eng.checkpoint_flush(&mut wal, &mut stats).unwrap();
        let (_, loaded) = reopen(&mut eng);
        assert!(!loaded.contains_key("a"));
        assert_eq!(loaded["b"].len(), 30);
    }

    #[test]
    fn pending_buffers_apply_on_commit_and_discard_on_rollback() {
        let (mut eng, mut wal) = engine(4);
        let mut stats = OpStats::default();
        eng.create_table("t");
        let t1 = TxnId(1);
        let t2 = TxnId(2);
        eng.capture(
            t1,
            &[LogRecord::Insert {
                txn: t1,
                table: "t".into(),
                row_id: RowId(1),
                row: row(1),
            }],
        );
        eng.capture(
            t2,
            &[LogRecord::Insert {
                txn: t2,
                table: "t".into(),
                row_id: RowId(2),
                row: row(2),
            }],
        );
        eng.discard(t2);
        eng.apply_commit(t1, &mut wal, &mut stats).unwrap();
        eng.apply_commit(t2, &mut wal, &mut stats).unwrap(); // no-op
        eng.checkpoint_flush(&mut wal, &mut stats).unwrap();
        let (_, loaded) = reopen(&mut eng);
        assert_eq!(loaded["t"].len(), 1, "rolled-back insert never landed");
        assert_eq!(loaded["t"][0].0, RowId(1));
    }
}
