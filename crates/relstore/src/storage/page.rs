//! Fixed-size checksummed pages with a slotted record layout.
//!
//! Every page is `page_size` bytes with a 24-byte fixed header:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------------
//!       0     4  crc32 over bytes [4, page_size)   (sealed at write time)
//!       4     4  magic "RPG1"
//!       8     1  kind: 0 Free, 1 Heap, 2 Overflow, 3 Meta
//!       9     1  reserved (0)
//!      10     2  slot_count            (heap)
//!      12     2  free_off / chunk_len  (heap: start of the cell region;
//!                                       overflow: payload chunk length)
//!      14     8  next page number      (overflow chain link; 0 = none)
//!      22     2  table-name length     (heap pages carry their table)
//!      24     …  table name bytes, then the slot array (4 bytes per slot:
//!                u16 cell offset + u16 cell length; 0,0 = dead slot),
//!                growing up — while cells grow down from the page end
//! ```
//!
//! A **heap cell** holds one row record:
//! `[row_id u64][flag u8]` + either the row payload (flag 0, encoded with
//! [`crate::io::codec::put_row`]) or, for rows larger than a page, an
//! **overflow stub** (flag 1): `[head page u64][total length u32]` pointing
//! at a chain of overflow pages each carrying one chunk of the payload.
//!
//! The CRC covers everything but itself, so a torn or bit-flipped page is
//! *detected* at read time ([`verify`] fails with [`Error::Corruption`]) —
//! never silently read.

use crate::error::{Error, Result};
use crate::io::codec::{put_row, put_u32, put_u64, put_u8, Reader};
use crate::io::crc::crc32;
use crate::tuple::{Row, RowId};

/// Page magic: "RPG1".
pub const PAGE_MAGIC: u32 = 0x5250_4731;

/// Size of the fixed page header, bytes.
pub const PAGE_HEADER: usize = 24;

/// On-disk format version recorded in the meta page.
pub const PAGE_FORMAT_VERSION: u16 = 1;

const OFF_CRC: usize = 0;
const OFF_MAGIC: usize = 4;
const OFF_KIND: usize = 8;
const OFF_SLOTS: usize = 10;
const OFF_FREE: usize = 12;
const OFF_NEXT: usize = 14;
const OFF_NAME_LEN: usize = 22;

/// What a page holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// On the freelist, reusable.
    Free = 0,
    /// Row records of one table.
    Heap = 1,
    /// One chunk of an oversized row payload.
    Overflow = 2,
    /// Page 0: file identity (magic, format version, page size).
    Meta = 3,
}

impl PageKind {
    fn from_u8(v: u8) -> Result<PageKind> {
        match v {
            0 => Ok(PageKind::Free),
            1 => Ok(PageKind::Heap),
            2 => Ok(PageKind::Overflow),
            3 => Ok(PageKind::Meta),
            other => Err(Error::corruption(format!("unknown page kind {other}"))),
        }
    }
}

fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

fn set_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn get_u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

fn set_u32_at(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_u64_at(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

fn set_u64_at(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Initialises `buf` as an empty page of `kind`; heap pages record their
/// (lowercased) table name. The CRC is **not** computed here — [`seal`] runs
/// at write-back time so in-pool mutations stay cheap.
pub fn init(buf: &mut [u8], kind: PageKind, name: &str) {
    let page_size = buf.len();
    buf.fill(0);
    set_u32_at(buf, OFF_MAGIC, PAGE_MAGIC);
    buf[OFF_KIND] = kind as u8;
    set_u16(buf, OFF_SLOTS, 0);
    set_u16(buf, OFF_FREE, page_size as u16);
    set_u64_at(buf, OFF_NEXT, 0);
    set_u16(buf, OFF_NAME_LEN, name.len() as u16);
    buf[PAGE_HEADER..PAGE_HEADER + name.len()].copy_from_slice(name.as_bytes());
}

/// Computes and stores the page CRC (over everything after the CRC field).
pub fn seal(buf: &mut [u8]) {
    let crc = crc32(&buf[OFF_MAGIC..]);
    set_u32_at(buf, OFF_CRC, crc);
}

/// Verifies magic and CRC; a mismatch is typed [`Error::Corruption`].
pub fn verify(buf: &[u8], page_no: u64) -> Result<()> {
    if get_u32_at(buf, OFF_MAGIC) != PAGE_MAGIC {
        return Err(Error::corruption(format!("page {page_no}: bad magic")));
    }
    let stored = get_u32_at(buf, OFF_CRC);
    let actual = crc32(&buf[OFF_MAGIC..]);
    if stored != actual {
        return Err(Error::corruption(format!(
            "page {page_no}: checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(())
}

/// The page's kind byte, decoded.
pub fn kind(buf: &[u8]) -> Result<PageKind> {
    PageKind::from_u8(buf[OFF_KIND])
}

/// The table name a heap page belongs to.
pub fn table_name(buf: &[u8]) -> Result<&str> {
    let len = get_u16(buf, OFF_NAME_LEN) as usize;
    if PAGE_HEADER + len > buf.len() {
        return Err(Error::corruption("page table name overruns the page"));
    }
    std::str::from_utf8(&buf[PAGE_HEADER..PAGE_HEADER + len])
        .map_err(|_| Error::corruption("page table name is not UTF-8"))
}

/// The overflow-chain / freelist link.
pub fn next(buf: &[u8]) -> u64 {
    get_u64_at(buf, OFF_NEXT)
}

/// Number of slots (live and dead) in a heap page.
pub fn slot_count(buf: &[u8]) -> u16 {
    get_u16(buf, OFF_SLOTS)
}

fn slots_base(buf: &[u8]) -> usize {
    PAGE_HEADER + get_u16(buf, OFF_NAME_LEN) as usize
}

/// The slot entry `(cell offset, cell length)`; `(0, 0)` is a dead slot.
pub fn slot(buf: &[u8], i: u16) -> (u16, u16) {
    let base = slots_base(buf) + 4 * i as usize;
    (get_u16(buf, base), get_u16(buf, base + 2))
}

fn set_slot(buf: &mut [u8], i: u16, off: u16, len: u16) {
    let base = slots_base(buf) + 4 * i as usize;
    set_u16(buf, base, off);
    set_u16(buf, base + 2, len);
}

/// The cell bytes behind a live slot.
pub fn record(buf: &[u8], i: u16) -> Result<&[u8]> {
    let (off, len) = slot(buf, i);
    if len == 0 {
        return Err(Error::corruption(format!("slot {i} is dead")));
    }
    let (off, len) = (off as usize, len as usize);
    if off + len > buf.len() || off < slots_base(buf) {
        return Err(Error::corruption(format!("slot {i} cell out of bounds")));
    }
    Ok(&buf[off..off + len])
}

/// Whether a cell of `len` bytes fits in this page, counting space that a
/// compaction of dead cells would reclaim and the slot entry it may need.
pub fn can_fit(buf: &[u8], len: usize) -> bool {
    let n = slot_count(buf);
    let mut live = 0usize;
    let mut has_dead_slot = false;
    for i in 0..n {
        let (_, l) = slot(buf, i);
        if l == 0 {
            has_dead_slot = true;
        } else {
            live += l as usize;
        }
    }
    let slots_end = slots_base(buf) + 4 * n as usize;
    let total_free = buf.len().saturating_sub(slots_end + live);
    let need = len + if has_dead_slot { 0 } else { 4 };
    total_free >= need
}

/// Rewrites all live cells tightly against the page end, reclaiming the
/// space of deleted cells. Slot indices are stable (the rows map points at
/// them); only cell offsets move.
fn compact(buf: &mut [u8]) {
    let page_size = buf.len();
    let n = slot_count(buf);
    // Move cells highest-offset first so the in-place copies never overlap
    // a cell that still needs moving.
    let mut order: Vec<u16> = (0..n).filter(|&i| slot(buf, i).1 != 0).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(slot(buf, i).0));
    let mut top = page_size;
    for i in order {
        let (off, len) = slot(buf, i);
        let (off, len_us) = (off as usize, len as usize);
        top -= len_us;
        buf.copy_within(off..off + len_us, top);
        set_slot(buf, i, top as u16, len);
    }
    set_u16(buf, OFF_FREE, top as u16);
}

/// Inserts a cell, returning its slot index, or `None` if the page cannot
/// hold it even after compaction. Dead slots are reused before the slot
/// array grows.
pub fn insert(buf: &mut [u8], cell: &[u8]) -> Option<u16> {
    if !can_fit(buf, cell.len()) {
        return None;
    }
    let n = slot_count(buf);
    let reuse = (0..n).find(|&i| slot(buf, i).1 == 0);
    let slot_idx = reuse.unwrap_or(n);
    let slots_end = slots_base(buf) + 4 * (n.max(slot_idx + 1)) as usize;
    if (get_u16(buf, OFF_FREE) as usize).saturating_sub(slots_end) < cell.len() {
        compact(buf);
    }
    if slot_idx == n {
        set_u16(buf, OFF_SLOTS, n + 1);
    }
    let free = get_u16(buf, OFF_FREE) as usize;
    let off = free - cell.len();
    buf[off..free].copy_from_slice(cell);
    set_u16(buf, OFF_FREE, off as u16);
    set_slot(buf, slot_idx, off as u16, cell.len() as u16);
    Some(slot_idx)
}

/// Marks a slot dead. The cell bytes are reclaimed by the next compaction.
pub fn delete(buf: &mut [u8], i: u16) {
    set_slot(buf, i, 0, 0);
}

// --- heap cell encoding -------------------------------------------------

/// What a decoded heap cell holds.
#[derive(Debug)]
pub enum CellBody {
    /// The full row payload, stored inline.
    Inline(Row),
    /// The row spilled to an overflow chain.
    Overflow {
        /// First page of the chain.
        head: u64,
        /// Total payload length across the chain.
        total: u32,
    },
}

/// Encodes an inline heap cell.
pub fn encode_inline(row_id: RowId, row: &Row) -> Vec<u8> {
    let mut cell = Vec::with_capacity(16);
    put_u64(&mut cell, row_id.0);
    put_u8(&mut cell, 0);
    put_row(&mut cell, row);
    cell
}

/// Encodes an overflow-stub heap cell.
pub fn encode_overflow_stub(row_id: RowId, head: u64, total: u32) -> Vec<u8> {
    let mut cell = Vec::with_capacity(21);
    put_u64(&mut cell, row_id.0);
    put_u8(&mut cell, 1);
    put_u64(&mut cell, head);
    put_u32(&mut cell, total);
    cell
}

/// Decodes a heap cell. Damage surfaces as [`Error::Corruption`].
pub fn decode_cell(cell: &[u8]) -> Result<(RowId, CellBody)> {
    let mut r = Reader::new(cell);
    let row_id = RowId(r.u64()?);
    match r.u8()? {
        0 => {
            let row = r.row()?;
            Ok((row_id, CellBody::Inline(row)))
        }
        1 => {
            let head = r.u64()?;
            let total = r.u32()?;
            Ok((row_id, CellBody::Overflow { head, total }))
        }
        other => Err(Error::corruption(format!("bad heap cell flag {other}"))),
    }
}

// --- overflow pages -----------------------------------------------------

/// Payload bytes one overflow page can carry.
pub fn overflow_capacity(page_size: usize) -> usize {
    page_size - PAGE_HEADER
}

/// Initialises `buf` as an overflow page carrying `chunk`, linked to `next`.
pub fn init_overflow(buf: &mut [u8], chunk: &[u8], next_page: u64) {
    init(buf, PageKind::Overflow, "");
    set_u16(buf, OFF_FREE, chunk.len() as u16);
    set_u64_at(buf, OFF_NEXT, next_page);
    buf[PAGE_HEADER..PAGE_HEADER + chunk.len()].copy_from_slice(chunk);
}

/// The payload chunk of an overflow page.
pub fn overflow_chunk(buf: &[u8]) -> Result<&[u8]> {
    let len = get_u16(buf, OFF_FREE) as usize;
    if PAGE_HEADER + len > buf.len() {
        return Err(Error::corruption("overflow chunk overruns the page"));
    }
    Ok(&buf[PAGE_HEADER..PAGE_HEADER + len])
}

// --- meta page ----------------------------------------------------------

/// Initialises page 0: file identity the store validates at open.
pub fn init_meta(buf: &mut [u8]) {
    init(buf, PageKind::Meta, "");
    let page_size = buf.len();
    set_u16(buf, PAGE_HEADER, PAGE_FORMAT_VERSION);
    set_u32_at(buf, PAGE_HEADER + 2, page_size as u32);
}

/// Validates the meta page against the configured page size.
pub fn check_meta(buf: &[u8]) -> Result<()> {
    if kind(buf)? != PageKind::Meta {
        return Err(Error::corruption("page 0 is not a meta page"));
    }
    let version = get_u16(buf, PAGE_HEADER);
    if version != PAGE_FORMAT_VERSION {
        return Err(Error::corruption(format!(
            "unsupported page format version {version}"
        )));
    }
    let stored = get_u32_at(buf, PAGE_HEADER + 2) as usize;
    if stored != buf.len() {
        return Err(Error::corruption(format!(
            "page file has page size {stored}, configured {}",
            buf.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::Text(format!("job-{i}").into())])
    }

    #[test]
    fn insert_read_delete_round_trip() {
        let mut page = vec![0u8; 512];
        init(&mut page, PageKind::Heap, "jobs");
        assert_eq!(table_name(&page).unwrap(), "jobs");

        let s0 = insert(&mut page, &encode_inline(RowId(1), &row(1))).unwrap();
        let s1 = insert(&mut page, &encode_inline(RowId(2), &row(2))).unwrap();
        assert_ne!(s0, s1);

        let (id, body) = decode_cell(record(&page, s0).unwrap()).unwrap();
        assert_eq!(id, RowId(1));
        match body {
            CellBody::Inline(r) => assert_eq!(r.get(0), &Value::Int(1)),
            other => panic!("expected inline, got {other:?}"),
        }

        delete(&mut page, s0);
        assert!(record(&page, s0).is_err());
        // The dead slot is reused.
        let s2 = insert(&mut page, &encode_inline(RowId(3), &row(3))).unwrap();
        assert_eq!(s2, s0);
    }

    #[test]
    fn compaction_reclaims_dead_cells() {
        let mut page = vec![0u8; 512];
        init(&mut page, PageKind::Heap, "t");
        let mut slots = Vec::new();
        let mut i = 0i64;
        while let Some(s) = insert(&mut page, &encode_inline(RowId(i as u64), &row(i))) {
            slots.push(s);
            i += 1;
        }
        assert!(slots.len() > 4, "page should hold several rows");
        // Delete every other row; the free space is fragmented.
        for &s in slots.iter().step_by(2) {
            delete(&mut page, s);
        }
        // A fresh insert triggers compaction and succeeds.
        let s = insert(&mut page, &encode_inline(RowId(999), &row(999)));
        assert!(s.is_some(), "compaction should make room");
        // Survivors are intact after the move.
        for &s in slots.iter().skip(1).step_by(2) {
            let (_, body) = decode_cell(record(&page, s).unwrap()).unwrap();
            assert!(matches!(body, CellBody::Inline(_)));
        }
    }

    #[test]
    fn seal_verify_detects_damage() {
        let mut page = vec![0u8; 512];
        init(&mut page, PageKind::Heap, "jobs");
        insert(&mut page, &encode_inline(RowId(1), &row(1))).unwrap();
        seal(&mut page);
        verify(&page, 7).unwrap();

        let mut torn = page.clone();
        torn[300] ^= 0x40;
        let err = verify(&torn, 7).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "got {err:?}");

        let mut bad_magic = page.clone();
        bad_magic[4] = 0;
        assert!(matches!(verify(&bad_magic, 7), Err(Error::Corruption(_))));
    }

    #[test]
    fn overflow_page_round_trip() {
        let mut page = vec![0u8; 512];
        let chunk: Vec<u8> = (0..200u8).collect();
        init_overflow(&mut page, &chunk, 42);
        assert_eq!(kind(&page).unwrap(), PageKind::Overflow);
        assert_eq!(next(&page), 42);
        assert_eq!(overflow_chunk(&page).unwrap(), &chunk[..]);
        assert_eq!(overflow_capacity(512), 512 - PAGE_HEADER);
    }

    #[test]
    fn meta_page_checks_identity() {
        let mut page = vec![0u8; 4096];
        init_meta(&mut page);
        check_meta(&page).unwrap();
        // A different configured page size is refused.
        let mut small = vec![0u8; 512];
        init_meta(&mut small);
        let mut mismatched = small.clone();
        mismatched.resize(4096, 0);
        assert!(check_meta(&mismatched).is_err());
    }
}
