//! The on-disk page file: allocation, checksummed reads, and journaled
//! (doublewrite) batch writes.
//!
//! # Torn-write safety
//!
//! A page write is not atomic — power loss mid-write leaves a torn page the
//! CRC will catch but nothing could repair. So every batch of page writes is
//! **journaled first**: the sealed page images are written to a small side
//! journal (via the atomic [`LogDevice::replace`] primitive), then written
//! into the page file, then the journal is cleared. Reopen replays whatever
//! complete journal it finds before reading any page, so a torn page under
//! the journal's protection is *healed*, while damage outside the protocol
//! (bit rot, manual corruption) surfaces as a typed
//! [`Error::Corruption`](crate::Error::Corruption) — never a panic, never a
//! silent read.
//!
//! The caller (the buffer pool) enforces the WAL-before-data rule — this
//! module only promises that a batch it acknowledged is atomic.

use super::device::BlockDevice;
use super::page;
use crate::error::{Error, Result};
use crate::io::codec::{put_u32, put_u64};
use crate::io::crc::crc32;
use crate::io::{points, FailAction, Failpoints, LogDevice};
use std::sync::Arc;

/// Journal magic: "RPJ1".
const JOURNAL_MAGIC: u32 = 0x5250_4A31;

/// The page file plus its doublewrite journal.
#[derive(Debug)]
pub struct PageStore {
    device: Box<dyn BlockDevice>,
    journal: Box<dyn LogDevice>,
    failpoints: Arc<Failpoints>,
    page_size: usize,
    /// Pages allocated, including page 0 (meta) and not-yet-flushed ones.
    page_count: u64,
    /// First device failure; every later call reports it instead of
    /// touching the device again (same discipline as the WAL writer).
    poisoned: Option<Error>,
}

fn encode_journal(page_size: usize, pages: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + pages.len() * (8 + page_size));
    put_u32(&mut buf, JOURNAL_MAGIC);
    put_u32(&mut buf, pages.len() as u32);
    for (page_no, image) in pages {
        put_u64(&mut buf, *page_no);
        buf.extend_from_slice(image);
    }
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

fn decode_journal(bytes: &[u8], page_size: usize) -> Result<Vec<(u64, Vec<u8>)>> {
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    if bytes.len() < 12 {
        return Err(Error::corruption("page journal too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if stored != crc32(body) {
        return Err(Error::corruption("page journal checksum mismatch"));
    }
    let magic = u32::from_le_bytes(body[0..4].try_into().unwrap());
    if magic != JOURNAL_MAGIC {
        return Err(Error::corruption("page journal bad magic"));
    }
    let count = u32::from_le_bytes(body[4..8].try_into().unwrap()) as usize;
    let mut pages = Vec::with_capacity(count);
    let mut pos = 8usize;
    for _ in 0..count {
        if body.len() - pos < 8 + page_size {
            return Err(Error::corruption("page journal entry truncated"));
        }
        let page_no = u64::from_le_bytes(body[pos..pos + 8].try_into().unwrap());
        pos += 8;
        pages.push((page_no, body[pos..pos + page_size].to_vec()));
        pos += page_size;
    }
    if pos != body.len() {
        return Err(Error::corruption("page journal has trailing bytes"));
    }
    Ok(pages)
}

impl PageStore {
    /// Opens (or initialises) a page file: replays any pending doublewrite
    /// journal, then validates the meta page against `page_size`.
    pub fn open(
        mut device: Box<dyn BlockDevice>,
        mut journal: Box<dyn LogDevice>,
        failpoints: Arc<Failpoints>,
        page_size: usize,
    ) -> Result<PageStore> {
        // 1. Replay the doublewrite journal, if one survived a crash. The
        //    journal is written with the atomic `replace`, so it is either
        //    empty, or one complete batch; anything else is corruption.
        let pending = decode_journal(&journal.durable_contents()?, page_size)?;
        if !pending.is_empty() {
            for (page_no, image) in &pending {
                device.write_at(page_no * page_size as u64, image)?;
            }
            device.sync()?;
            journal.replace(&[])?;
        }

        // 2. Fresh file: lay down the meta page.
        if device.is_empty() {
            let mut meta = vec![0u8; page_size];
            page::init_meta(&mut meta);
            page::seal(&mut meta);
            device.write_at(0, &meta)?;
            device.sync()?;
        }

        // 3. Validate identity. A page file from a different page size (or
        //    something that is not a page file) is refused, not guessed at.
        if device.len() < page_size as u64 {
            return Err(Error::corruption(format!(
                "page file holds {} byte(s), smaller than one {page_size}-byte page",
                device.len()
            )));
        }
        let mut meta = vec![0u8; page_size];
        device.read_at(0, &mut meta)?;
        page::verify(&meta, 0)?;
        page::check_meta(&meta)?;

        // A torn tail past the last full page can only be an extension that
        // was never acknowledged (the journal heals acknowledged ones), so
        // flooring the count drops nothing committed.
        let page_count = (device.len() / page_size as u64).max(1);
        Ok(PageStore {
            device,
            journal,
            failpoints,
            page_size,
            page_count,
            poisoned: None,
        })
    }

    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(e) => Err(Error::io(format!(
                "page store poisoned by earlier failure: {e}"
            ))),
            None => Ok(()),
        }
    }

    fn poison<T>(&mut self, e: Error) -> Result<T> {
        if self.poisoned.is_none() {
            self.poisoned = Some(e.clone());
        }
        Err(e)
    }

    /// The configured page size, bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages allocated so far (including the meta page).
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// Allocates a fresh page number at the end of the file. The page exists
    /// on disk only once a batch containing it is flushed.
    pub fn allocate(&mut self) -> u64 {
        let page_no = self.page_count;
        self.page_count += 1;
        page_no
    }

    /// Reads and checksum-verifies one page into `buf` (which must be
    /// exactly one page long). A CRC or magic mismatch is
    /// [`Error::Corruption`](crate::Error::Corruption).
    pub fn read_page(&mut self, page_no: u64, buf: &mut [u8]) -> Result<()> {
        self.check_poisoned()?;
        debug_assert_eq!(buf.len(), self.page_size);
        self.device
            .read_at(page_no * self.page_size as u64, buf)?;
        page::verify(buf, page_no)
    }

    /// As [`PageStore::read_page`], but reports an all-zero page as
    /// `Ok(false)` without verifying (leaving `buf` zeroed). The file can
    /// legitimately hold such holes: a page is allocated, a *later* page's
    /// write extends the file past it, and the crash comes before the
    /// earlier page is ever flushed. Nothing durable references a hole, so
    /// the open-time scan reclaims it instead of calling it corrupt.
    pub fn read_page_if_written(&mut self, page_no: u64, buf: &mut [u8]) -> Result<bool> {
        self.check_poisoned()?;
        debug_assert_eq!(buf.len(), self.page_size);
        self.device
            .read_at(page_no * self.page_size as u64, buf)?;
        if buf.iter().all(|b| *b == 0) {
            return Ok(false);
        }
        page::verify(buf, page_no)?;
        Ok(true)
    }

    /// Durably writes a batch of pages, atomically: journal first, then the
    /// page file, then clear the journal. `pages` holds **unsealed** frame
    /// images — the CRC is computed here on a copy, so pool frames stay
    /// cheap to mutate.
    ///
    /// Any failure poisons the store: a half-applied batch is left for the
    /// journal replay at next open, and no later write can run ahead of it.
    pub fn write_batch(&mut self, pages: &[(u64, &[u8])]) -> Result<()> {
        self.check_poisoned()?;
        if pages.is_empty() {
            return Ok(());
        }
        let sealed: Vec<(u64, Vec<u8>)> = pages
            .iter()
            .map(|(page_no, image)| {
                let mut copy = image.to_vec();
                page::seal(&mut copy);
                (*page_no, copy)
            })
            .collect();

        // Journal the batch (atomic + durable via replace).
        let journal_bytes = encode_journal(self.page_size, &sealed);
        if let Err(e) = self.journal.replace(&journal_bytes) {
            return self.poison(e);
        }

        // Write the pages, with fault injection on each write.
        for (page_no, image) in &sealed {
            if let Err(e) = self.injected_page_write(*page_no, image) {
                return self.poison(e);
            }
        }

        // Make them durable, then retire the journal.
        if let Err(e) = self.injected_page_sync() {
            return self.poison(e);
        }
        if let Err(e) = self.journal.replace(&[]) {
            return self.poison(e);
        }
        Ok(())
    }

    fn injected_page_write(&mut self, page_no: u64, image: &[u8]) -> Result<()> {
        let offset = page_no * self.page_size as u64;
        match self.failpoints.check(points::PAGE_WRITE) {
            None => self.device.write_at(offset, image),
            Some(FailAction::Err) => Err(Error::io("injected page write failure")),
            Some(FailAction::ShortWrite(k)) => {
                let k = k.min(image.len());
                self.device.write_at(offset, &image[..k])?;
                Err(Error::io(format!(
                    "injected short page write ({k} of {} bytes)",
                    image.len()
                )))
            }
            Some(FailAction::TornWrite(k)) => {
                let k = k.min(image.len());
                self.device.write_at(offset, &image[..k])?;
                self.device.sync()?;
                self.device.crash();
                Err(Error::io(format!(
                    "injected torn page write ({k} of {} bytes), device dead",
                    image.len()
                )))
            }
            Some(FailAction::Crash) => {
                self.device.write_at(offset, image)?;
                self.device.crash();
                Err(Error::io("injected crash before page sync, device dead"))
            }
        }
    }

    fn injected_page_sync(&mut self) -> Result<()> {
        match self.failpoints.check(points::PAGE_SYNC) {
            None => self.device.sync(),
            Some(FailAction::Crash) => {
                self.device.crash();
                Err(Error::io("injected crash at page sync, device dead"))
            }
            Some(_) => Err(Error::io("injected page sync failure")),
        }
    }

    /// The bytes a crash right now would leave in the page file (post-mortem
    /// view for crash tests; answers even after the device died).
    pub fn durable_page_bytes(&self) -> Result<Vec<u8>> {
        self.device.durable_contents()
    }

    /// The bytes a crash right now would leave in the doublewrite journal.
    pub fn durable_journal_bytes(&self) -> Result<Vec<u8>> {
        self.journal.durable_contents()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemDevice;
    use crate::storage::device::MemBlockDevice;
    use crate::storage::page::{self, PageKind};

    fn fresh(page_size: usize) -> PageStore {
        PageStore::open(
            Box::new(MemBlockDevice::new()),
            Box::new(MemDevice::new()),
            Arc::new(Failpoints::new()),
            page_size,
        )
        .unwrap()
    }

    fn heap_page(page_size: usize, name: &str) -> Vec<u8> {
        let mut buf = vec![0u8; page_size];
        page::init(&mut buf, PageKind::Heap, name);
        buf
    }

    #[test]
    fn open_initialises_and_reopens() {
        let mut store = fresh(512);
        assert_eq!(store.page_count(), 1, "meta page");
        let p = store.allocate();
        assert_eq!(p, 1);
        let image = heap_page(512, "jobs");
        store.write_batch(&[(p, &image)]).unwrap();

        let pages = store.durable_page_bytes().unwrap();
        let journal = store.durable_journal_bytes().unwrap();
        assert!(journal.is_empty(), "journal cleared after a clean batch");

        let mut reopened = PageStore::open(
            Box::new(MemBlockDevice::with_contents(pages)),
            Box::new(MemDevice::with_contents(journal)),
            Arc::new(Failpoints::new()),
            512,
        )
        .unwrap();
        assert_eq!(reopened.page_count(), 2);
        let mut buf = vec![0u8; 512];
        reopened.read_page(1, &mut buf).unwrap();
        assert_eq!(page::table_name(&buf).unwrap(), "jobs");
    }

    #[test]
    fn journal_heals_torn_page_write() {
        let mut store = fresh(512);
        let p = store.allocate();
        let good = heap_page(512, "jobs");
        store.write_batch(&[(p, &good)]).unwrap();

        // Second write to the same page tears mid-page: 100 of 512 bytes
        // land durably, then the device dies.
        let mut updated = good.clone();
        page::insert(
            &mut updated,
            &page::encode_inline(crate::tuple::RowId(9), &crate::tuple::Row::new(vec![])),
        )
        .unwrap();
        store
            .failpoints
            .arm(points::PAGE_WRITE, FailAction::TornWrite(100));
        let err = store.write_batch(&[(p, &updated)]).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "got {err:?}");
        // Poisoned: later writes refuse.
        assert!(store.write_batch(&[(p, &good)]).is_err());

        // Reopen from the post-mortem bytes: the journal still holds the
        // batch, so the torn page is healed to the *new* image.
        let mut reopened = PageStore::open(
            Box::new(MemBlockDevice::with_contents(
                store.durable_page_bytes().unwrap(),
            )),
            Box::new(MemDevice::with_contents(
                store.durable_journal_bytes().unwrap(),
            )),
            Arc::new(Failpoints::new()),
            512,
        )
        .unwrap();
        let mut buf = vec![0u8; 512];
        reopened.read_page(p, &mut buf).unwrap();
        assert_eq!(page::slot_count(&buf), 1, "healed to the journaled image");
    }

    #[test]
    fn unjournaled_damage_is_typed_corruption() {
        let mut store = fresh(512);
        let p = store.allocate();
        let image = heap_page(512, "jobs");
        store.write_batch(&[(p, &image)]).unwrap();
        let mut bytes = store.durable_page_bytes().unwrap();
        bytes[512 + 50] ^= 0xFF; // flip a byte inside page 1
        let mut reopened = PageStore::open(
            Box::new(MemBlockDevice::with_contents(bytes)),
            Box::new(MemDevice::new()),
            Arc::new(Failpoints::new()),
            512,
        )
        .unwrap();
        let mut buf = vec![0u8; 512];
        let err = reopened.read_page(p, &mut buf).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "got {err:?}");
    }

    #[test]
    fn wrong_page_size_is_refused() {
        let store = fresh(512);
        let bytes = store.durable_page_bytes().unwrap();
        let err = PageStore::open(
            Box::new(MemBlockDevice::with_contents(bytes)),
            Box::new(MemDevice::new()),
            Arc::new(Failpoints::new()),
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "got {err:?}");
    }

    #[test]
    fn journal_round_trip_and_corruption() {
        let image = heap_page(256, "t");
        let encoded = encode_journal(256, &[(3, image.clone())]);
        let decoded = decode_journal(&encoded, 256).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].0, 3);
        assert_eq!(decoded[0].1, image);
        assert!(decode_journal(&[], 256).unwrap().is_empty());
        let mut bad = encoded.clone();
        bad[10] ^= 1;
        assert!(matches!(
            decode_journal(&bad, 256),
            Err(Error::Corruption(_))
        ));
    }
}
