//! The buffer pool: a bounded cache of page frames with clock eviction,
//! dirty tracking, and the WAL-before-data rule.
//!
//! Every page access goes through [`BufferPool::acquire`]; a miss reads the
//! page from the [`PageStore`] (checksum-verified), evicting a victim frame
//! if the pool is full. A **dirty victim must be written back** — and that
//! is the one place data can reach the page file ahead of the log, so the
//! pool flushes the WAL first whenever it has unsynced records
//! ([`Wal::is_synced`]). The invariant: *no page image ever becomes durable
//! before the WAL records that produced it.*
//!
//! Frames are never pinned: the paged heap acquires a frame, finishes with
//! it, and only then acquires the next, so the victim scan can consider
//! every frame. Clock (second-chance) eviction keeps the hot set resident;
//! `buffer_hits` / `buffer_evictions` counters make the hit rate visible in
//! `OpStats`.

use super::pagestore::PageStore;
use crate::error::Result;
use crate::stats::OpStats;
use crate::wal::Wal;
use std::collections::HashMap;

#[derive(Debug)]
struct Frame {
    page_no: u64,
    data: Vec<u8>,
    dirty: bool,
    /// Second-chance bit: set on every touch, cleared by the clock sweep.
    ref_bit: bool,
}

/// A bounded pool of page frames over a [`PageStore`].
#[derive(Debug)]
pub struct BufferPool {
    store: PageStore,
    capacity: usize,
    frames: Vec<Frame>,
    /// page number → frame index.
    map: HashMap<u64, usize>,
    clock: usize,
}

impl BufferPool {
    /// A pool of at most `capacity` frames (min 1) over `store`.
    pub fn new(store: PageStore, capacity: usize) -> BufferPool {
        BufferPool {
            store,
            capacity: capacity.max(1),
            frames: Vec::new(),
            map: HashMap::new(),
            clock: 0,
        }
    }

    /// The page size of the underlying store.
    pub fn page_size(&self) -> usize {
        self.store.page_size()
    }

    /// The underlying store (allocation, post-mortem byte accessors).
    pub fn store(&mut self) -> &mut PageStore {
        &mut self.store
    }

    /// Read-only view of a resident frame.
    pub fn frame(&self, idx: usize) -> &[u8] {
        &self.frames[idx].data
    }

    /// Mutable view of a resident frame; marks it dirty.
    pub fn frame_mut(&mut self, idx: usize) -> &mut [u8] {
        self.frames[idx].dirty = true;
        &mut self.frames[idx].data
    }

    /// Brings `page_no` into the pool (from cache or disk) and returns its
    /// frame index. May evict — and therefore write back — another page,
    /// flushing the WAL first if needed.
    pub fn acquire(&mut self, page_no: u64, wal: &mut Wal, stats: &mut OpStats) -> Result<usize> {
        if let Some(&idx) = self.map.get(&page_no) {
            self.frames[idx].ref_bit = true;
            stats.buffer_hits += 1;
            return Ok(idx);
        }
        let idx = self.victim_frame(wal, stats)?;
        let page_size = self.store.page_size();
        self.frames[idx].data.resize(page_size, 0);
        self.store.read_page(page_no, &mut self.frames[idx].data)?;
        stats.pages_read += 1;
        self.install(idx, page_no);
        Ok(idx)
    }

    /// Claims a frame for a freshly allocated page without reading the
    /// store (the page has no on-disk image yet). The frame comes back
    /// zeroed and **clean** — the caller initialises it via
    /// [`frame_mut`](BufferPool::frame_mut), which marks it dirty.
    pub fn create(&mut self, page_no: u64, wal: &mut Wal, stats: &mut OpStats) -> Result<usize> {
        // A freed page being recycled may still be resident: reuse its frame
        // in place (the old image is dead by definition).
        let idx = match self.map.get(&page_no).copied() {
            Some(idx) => idx,
            None => self.victim_frame(wal, stats)?,
        };
        let page_size = self.store.page_size();
        self.frames[idx].data.clear();
        self.frames[idx].data.resize(page_size, 0);
        self.install(idx, page_no);
        Ok(idx)
    }

    fn install(&mut self, idx: usize, page_no: u64) {
        self.frames[idx].page_no = page_no;
        self.frames[idx].dirty = false;
        self.frames[idx].ref_bit = true;
        self.map.insert(page_no, idx);
    }

    /// Finds a frame to (re)use: grows the pool while under capacity, else
    /// runs the clock sweep and evicts the victim (writing it back if
    /// dirty, behind the WAL gate).
    fn victim_frame(&mut self, wal: &mut Wal, stats: &mut OpStats) -> Result<usize> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_no: u64::MAX,
                data: Vec::new(),
                dirty: false,
                ref_bit: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // Clock sweep: clear reference bits until a frame without one comes
        // around. Two full sweeps bound the loop even if every bit is set.
        let idx = loop {
            let i = self.clock;
            self.clock = (self.clock + 1) % self.frames.len();
            if self.frames[i].ref_bit {
                self.frames[i].ref_bit = false;
            } else {
                break i;
            }
        };
        let victim = &self.frames[idx];
        if victim.dirty {
            // WAL-before-data: the records that dirtied this page must be
            // durable before its image is. The write-back is the expensive
            // part of recycling a frame, so it is what `eviction_nanos`
            // measures (and what statement wait breakdowns report).
            let sw = crate::obs::clock::Stopwatch::start();
            if !wal.is_synced() {
                wal.flush(stats)?;
            }
            let batch = [(victim.page_no, victim.data.as_slice())];
            self.store.write_batch(&batch)?;
            stats.eviction_nanos += sw.elapsed_nanos();
            stats.pages_written += 1;
            stats.buffer_evictions += 1;
        } else if victim.page_no != u64::MAX {
            stats.buffer_evictions += 1;
        }
        self.map.remove(&self.frames[idx].page_no);
        self.frames[idx].dirty = false;
        Ok(idx)
    }

    /// Writes every dirty frame back in one journaled batch (WAL flushed
    /// first), leaving the frames resident and clean. This is the
    /// checkpoint path: after it returns, the page file holds every
    /// committed change and the WAL prefix is redundant.
    pub fn flush_all(&mut self, wal: &mut Wal, stats: &mut OpStats) -> Result<()> {
        let dirty: Vec<(u64, &[u8])> = self
            .frames
            .iter()
            .filter(|f| f.dirty)
            .map(|f| (f.page_no, f.data.as_slice()))
            .collect();
        if dirty.is_empty() {
            return Ok(());
        }
        if !wal.is_synced() {
            wal.flush(stats)?;
        }
        let written = dirty.len() as u64;
        self.store.write_batch(&dirty)?;
        stats.pages_written += written;
        for f in &mut self.frames {
            f.dirty = false;
        }
        Ok(())
    }

    /// Writes the listed pages through to the store now (one journaled
    /// batch, WAL flushed first) if they are resident and dirty, leaving
    /// them resident and clean. Pages already evicted were written back at
    /// eviction and are skipped. The overflow path uses this to keep a
    /// chain at least as durable as the stub that references it — a
    /// stub-bearing heap page can be evicted (and become durable) at any
    /// moment.
    pub fn flush_pages(&mut self, pages: &[u64], wal: &mut Wal, stats: &mut OpStats) -> Result<()> {
        let dirty: Vec<(u64, &[u8])> = pages
            .iter()
            .filter_map(|p| {
                let f = &self.frames[*self.map.get(p)?];
                f.dirty.then_some((f.page_no, f.data.as_slice()))
            })
            .collect();
        if dirty.is_empty() {
            return Ok(());
        }
        if !wal.is_synced() {
            wal.flush(stats)?;
        }
        let written = dirty.len() as u64;
        self.store.write_batch(&dirty)?;
        stats.pages_written += written;
        for p in pages {
            if let Some(&idx) = self.map.get(p) {
                self.frames[idx].dirty = false;
            }
        }
        Ok(())
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// Drops every frame without writing anything — recovery uses this to
    /// reload a store the journal may just have healed.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{DurabilityPolicy, Failpoints, MemDevice};
    use crate::storage::device::MemBlockDevice;
    use crate::storage::page::{self, PageKind};
    use std::sync::Arc;

    fn pool(capacity: usize) -> (BufferPool, Wal) {
        let store = PageStore::open(
            Box::new(MemBlockDevice::new()),
            Box::new(MemDevice::new()),
            Arc::new(Failpoints::new()),
            512,
        )
        .unwrap();
        let wal = Wal::open_device(
            Box::new(MemDevice::new()),
            DurabilityPolicy::Always,
            Arc::new(Failpoints::new()),
            &mut OpStats::default(),
        )
        .unwrap();
        (BufferPool::new(store, capacity), wal)
    }

    #[test]
    fn hits_and_evictions_are_counted() {
        let (mut pool, mut wal) = pool(2);
        let mut stats = OpStats::default();
        let pages: Vec<u64> = (0..3)
            .map(|_| {
                let p = pool.store().allocate();
                let idx = pool.create(p, &mut wal, &mut stats).unwrap();
                page::init(pool.frame_mut(idx), PageKind::Heap, "t");
                p
            })
            .collect();
        // Three pages in a two-frame pool: the third create evicted one.
        assert_eq!(stats.buffer_evictions, 1);
        assert_eq!(stats.pages_written, 1, "the evicted frame was dirty");

        // Touch the resident page: a hit, no IO.
        let resident = pool.frames.iter().map(|f| f.page_no).collect::<Vec<_>>();
        let before_reads = stats.pages_read;
        pool.acquire(resident[0], &mut wal, &mut stats).unwrap();
        assert_eq!(stats.buffer_hits, 1);
        assert_eq!(stats.pages_read, before_reads);

        // Re-acquire the evicted page: a miss that reads from the store.
        let evicted = pages
            .iter()
            .find(|p| !resident.contains(p))
            .copied()
            .unwrap();
        pool.acquire(evicted, &mut wal, &mut stats).unwrap();
        assert_eq!(stats.pages_read, before_reads + 1);
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn flush_all_persists_every_dirty_frame() {
        let (mut pool, mut wal) = pool(8);
        let mut stats = OpStats::default();
        let mut pages = Vec::new();
        for _ in 0..4 {
            let p = pool.store().allocate();
            let idx = pool.create(p, &mut wal, &mut stats).unwrap();
            page::init(pool.frame_mut(idx), PageKind::Heap, "jobs");
            pages.push(p);
        }
        pool.flush_all(&mut wal, &mut stats).unwrap();
        assert_eq!(stats.pages_written, 4);
        // Flushed frames are clean: a second flush writes nothing.
        pool.flush_all(&mut wal, &mut stats).unwrap();
        assert_eq!(stats.pages_written, 4);

        // The images round-trip through the store.
        let bytes = pool.store().durable_page_bytes().unwrap();
        let mut reopened = PageStore::open(
            Box::new(MemBlockDevice::with_contents(bytes)),
            Box::new(MemDevice::new()),
            Arc::new(Failpoints::new()),
            512,
        )
        .unwrap();
        let mut buf = vec![0u8; 512];
        for p in pages {
            reopened.read_page(p, &mut buf).unwrap();
            assert_eq!(page::table_name(&buf).unwrap(), "jobs");
        }
    }
}
