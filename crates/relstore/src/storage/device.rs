//! Random-access block devices backing the page store.
//!
//! The WAL's [`crate::io::LogDevice`] is append-only; pages need positioned
//! reads and writes, so the page store gets its own seam. The two
//! implementations mirror the log-device pair:
//!
//! * [`FsBlockDevice`] — a real file, positioned via seeks, fsynced with
//!   `sync_all`.
//! * [`MemBlockDevice`] — deterministic crash model for tests: writes land
//!   in a volatile image and become durable only on [`BlockDevice::sync`];
//!   [`BlockDevice::crash`] kills the device, and
//!   [`BlockDevice::durable_contents`] answers post-mortem with exactly the
//!   bytes a real disk would have kept.

use crate::error::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A random-access byte device holding the page file.
///
/// Offsets are absolute byte positions; the page store always reads and
/// writes whole page-aligned extents. Implementations must make
/// [`sync`](BlockDevice::sync) a durability barrier: bytes written before a
/// successful sync survive a crash, bytes written after it may not.
pub trait BlockDevice: std::fmt::Debug + Send {
    /// Reads exactly `buf.len()` bytes starting at `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `data` at `offset`, extending the device if needed. The write
    /// is **not** durable until the next successful [`sync`](BlockDevice::sync).
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()>;

    /// Durability barrier: forces every prior write onto stable storage.
    fn sync(&mut self) -> Result<()>;

    /// Current device length in bytes (including unsynced extensions).
    fn len(&self) -> u64;

    /// True when the device holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulates a crash: unsynced writes are lost and the device refuses
    /// all further operations. Post-mortem state remains observable through
    /// [`durable_contents`](BlockDevice::durable_contents).
    fn crash(&mut self);

    /// The bytes a crash right now would leave on stable storage. Works
    /// even after [`crash`](BlockDevice::crash) — it is the view recovery
    /// tests reopen from.
    fn durable_contents(&self) -> Result<Vec<u8>>;
}

fn dead() -> Error {
    Error::io("block device is dead (crashed)")
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> Error {
    Error::io(format!("{ctx} {}: {e}", path.display()))
}

/// A file-backed [`BlockDevice`]: positioned reads/writes against one file,
/// `sync_all` as the durability barrier.
#[derive(Debug)]
pub struct FsBlockDevice {
    path: PathBuf,
    file: File,
    len: u64,
    dead: bool,
}

impl FsBlockDevice {
    /// Opens (creating if absent) the page file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open page file", &path, e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("stat page file", &path, e))?
            .len();
        Ok(FsBlockDevice {
            path,
            file,
            len,
            dead: false,
        })
    }

    /// The path this device writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl BlockDevice for FsBlockDevice {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(buf))
            .map_err(|e| io_err("read page file", &self.path, e))
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.write_all(data))
            .map_err(|e| io_err("write page file", &self.path, e))?;
        self.len = self.len.max(offset + data.len() as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        self.file
            .sync_all()
            .map_err(|e| io_err("sync page file", &self.path, e))
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn crash(&mut self) {
        self.dead = true;
    }

    fn durable_contents(&self) -> Result<Vec<u8>> {
        // Re-read from a fresh handle: what the filesystem has is the
        // post-mortem truth (the OS may hold more than was fsynced, but the
        // file device is not the crash-modelling one — tests use MemBlockDevice).
        std::fs::read(&self.path).map_err(|e| io_err("read back page file", &self.path, e))
    }
}

/// An in-memory [`BlockDevice`] with an explicit crash model: writes hit a
/// volatile image, [`sync`](BlockDevice::sync) copies it to the durable
/// image, and [`crash`](BlockDevice::crash) discards everything unsynced.
#[derive(Debug, Default)]
pub struct MemBlockDevice {
    /// The volatile image — what in-process reads observe.
    current: Vec<u8>,
    /// The durable image — what a crash would leave behind.
    durable: Vec<u8>,
    dead: bool,
}

impl MemBlockDevice {
    /// An empty device.
    pub fn new() -> Self {
        MemBlockDevice::default()
    }

    /// A device whose durable and volatile images both start as `contents` —
    /// how crash tests "reopen the disk" from a post-mortem byte capture.
    pub fn with_contents(contents: Vec<u8>) -> Self {
        MemBlockDevice {
            current: contents.clone(),
            durable: contents,
            dead: false,
        }
    }

    /// Bytes written since the last successful sync (test observability).
    pub fn unsynced_len(&self) -> usize {
        self.current.len().saturating_sub(self.durable.len())
    }
}

impl BlockDevice for MemBlockDevice {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        let start = offset as usize;
        let end = start + buf.len();
        if end > self.current.len() {
            return Err(Error::io(format!(
                "read past end of block device: {end} > {}",
                self.current.len()
            )));
        }
        buf.copy_from_slice(&self.current[start..end]);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        let start = offset as usize;
        let end = start + data.len();
        if end > self.current.len() {
            self.current.resize(end, 0);
        }
        self.current[start..end].copy_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        if self.dead {
            return Err(dead());
        }
        self.durable = self.current.clone();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.current.len() as u64
    }

    fn crash(&mut self) {
        self.dead = true;
    }

    fn durable_contents(&self) -> Result<Vec<u8>> {
        // Deliberately answers even when dead: this is the post-mortem view.
        Ok(self.durable.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_round_trips_and_models_crash() {
        let mut d = MemBlockDevice::new();
        d.write_at(0, b"hello").unwrap();
        d.write_at(8, b"world").unwrap();
        assert_eq!(d.len(), 13);
        let mut buf = [0u8; 5];
        d.read_at(8, &mut buf).unwrap();
        assert_eq!(&buf, b"world");

        // Nothing synced yet: a crash loses everything.
        assert_eq!(d.durable_contents().unwrap().len(), 0);
        d.sync().unwrap();
        assert_eq!(d.durable_contents().unwrap().len(), 13);

        d.write_at(0, b"HELLO").unwrap();
        d.crash();
        // The overwrite was unsynced: the durable image kept the old bytes.
        let post = d.durable_contents().unwrap();
        assert_eq!(&post[..5], b"hello");
        // The dead device refuses further IO.
        assert!(d.sync().is_err());
        assert!(d.write_at(0, b"x").is_err());
        let mut buf = [0u8; 1];
        assert!(d.read_at(0, &mut buf).is_err());
    }

    #[test]
    fn mem_device_reopens_from_contents() {
        let mut d = MemBlockDevice::new();
        d.write_at(0, b"pages").unwrap();
        d.sync().unwrap();
        let bytes = d.durable_contents().unwrap();
        let mut reopened = MemBlockDevice::with_contents(bytes);
        let mut buf = [0u8; 5];
        reopened.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"pages");
    }

    #[test]
    fn fs_device_round_trips() {
        let path = std::env::temp_dir().join(format!(
            "relstore_blockdev_{}_{:?}.pages",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut d = FsBlockDevice::open(&path).unwrap();
            assert!(d.is_empty());
            d.write_at(4096, &[7u8; 16]).unwrap();
            d.sync().unwrap();
            assert_eq!(d.len(), 4096 + 16);
        }
        {
            let mut d = FsBlockDevice::open(&path).unwrap();
            assert_eq!(d.len(), 4096 + 16);
            let mut buf = [0u8; 16];
            d.read_at(4096, &mut buf).unwrap();
            assert_eq!(buf, [7u8; 16]);
            assert_eq!(d.durable_contents().unwrap().len(), 4096 + 16);
        }
        std::fs::remove_file(&path).ok();
    }
}
