//! Paged storage engine: on-disk page store, buffer pool, and paged table
//! heaps.
//!
//! This subsystem makes the *data* durable the way PR 6 made the *log*
//! durable, so a dataset can outgrow the buffer pool (and eventually RAM)
//! without giving up the in-memory engine's query path. It is **opt-in**:
//! [`Database::new`](crate::Database::new) remains purely in-memory;
//! [`Database::open_paged`](crate::Database::open_paged) layers the page
//! file on top of the WAL.
//!
//! # Page format
//!
//! The page file is an array of fixed-size pages (default 4 KiB). Page 0 is
//! the meta page; the rest are table heaps, overflow chains, or freelist
//! members:
//!
//! ```text
//! ┌──────────────────────────── page (page_size bytes) ────────────────────────────┐
//! │ crc32 │ magic │kind│rsv│slots│free_off│ next  │name_len│ name │ slot array → … │
//! │  u32  │ "RPG1"│ u8 │u8 │ u16 │  u16   │  u64  │  u16   │      │ (off,len) u16² │
//! │                                                          … ← cells grow down  │
//! └────────────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Each heap cell is `[row_id u64][flag u8]` + the row payload inline, or an
//! overflow stub (`head page u64`, `total len u32`) when the row is larger
//! than a page. Every page carries a CRC over its full body, sealed at
//! write-back: torn or bit-flipped pages are *detected* as
//! [`Error::Corruption`], never silently read.
//!
//! # WAL-before-data, and torn-write safety
//!
//! Two rules keep the page file honest with respect to the log:
//!
//! 1. **WAL-before-data** — a dirty page may reach the page file only after
//!    the WAL records that produced it are durable. The buffer pool flushes
//!    the WAL before any page write-back (eviction or checkpoint).
//! 2. **Journaled page writes** — every batch of page writes is first
//!    staged in a doublewrite journal (atomic `replace`), then written,
//!    then the journal is cleared. Reopen replays a surviving journal, so a
//!    torn page write heals instead of corrupting the file.
//!
//! The heap coupling is **no-steal**: uncommitted changes are buffered per
//! transaction and reach pages only at commit, so recovery never needs to
//! undo page state — it only replays the committed WAL suffix past the last
//! checkpoint.

mod buffer;
mod device;
mod heap;
mod page;
mod pagestore;

pub use buffer::BufferPool;
pub use device::{BlockDevice, FsBlockDevice, MemBlockDevice};
pub use pagestore::PageStore;

pub(crate) use heap::PagedEngine;

use crate::error::{Error, Result};

/// Tuning knobs for a paged database ([`crate::Database::open_paged_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedConfig {
    /// Page size in bytes. Must be a power of two in `512..=32768`.
    pub page_size: usize,
    /// Buffer-pool capacity in pages (min 1). Memory ceiling for resident
    /// page data is `page_size * pool_pages`.
    pub pool_pages: usize,
}

impl Default for PagedConfig {
    fn default() -> Self {
        PagedConfig {
            page_size: 4096,
            pool_pages: 64,
        }
    }
}

impl PagedConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(512..=32768).contains(&self.page_size) || !self.page_size.is_power_of_two() {
            return Err(Error::internal(format!(
                "page_size must be a power of two in 512..=32768, got {}",
                self.page_size
            )));
        }
        if self.pool_pages == 0 {
            return Err(Error::internal("pool_pages must be at least 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(PagedConfig::default().validate().is_ok());
        assert!(PagedConfig {
            page_size: 512,
            pool_pages: 1
        }
        .validate()
        .is_ok());
        for bad in [
            PagedConfig {
                page_size: 100,
                pool_pages: 4
            },
            PagedConfig {
                page_size: 65536,
                pool_pages: 4
            },
            PagedConfig {
                page_size: 5000,
                pool_pages: 4
            },
            PagedConfig {
                page_size: 4096,
                pool_pages: 0
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }
}
