//! # wire — the relstore network protocol, server and client
//!
//! The paper's deployment separates the engine from its callers: every
//! service request crosses the app server's HTTP-to-SQL hot path into a
//! database that is a *network peer*, not a linked library. This crate gives
//! the embedded [`relstore`] engine that front door:
//!
//! * a **length-prefixed binary protocol** ([`protocol`]) with a versioned
//!   handshake, frames for `Prepare` / `Execute` / `Query` /
//!   `ExecuteBatch` / `QueryBatch` / `Begin` / `Commit` / `Rollback`,
//!   streamed row pages for large results, and an error frame that carries
//!   the engine's [`Error`](relstore::Error) variant *and* class — a remote
//!   write-write conflict is just as retryable as an embedded one. The
//!   codec ([`codec`]) is hand-rolled put/get over byte buffers (like the
//!   WAL — no serialization framework) and never panics on hostile input;
//! * a **threaded TCP server** ([`server`], [`serve`]): an accept loop with
//!   admission control feeding a worker pool, per-connection
//!   prepared-statement handles, at most one open transaction per
//!   connection — **rolled back the moment the connection drops** — and
//!   graceful shutdown that drains in-flight statements;
//! * a **blocking client and pool** ([`client`]): [`Client`] mirrors the
//!   typed [`Session`](relstore::Session) surface (tuple [`IntoParams`]
//!   parameters, [`FromRow`] decoding, `execute_batch`, `with_retries`,
//!   RAII [`RemoteTransaction`] guards), so service code is
//!   transport-agnostic; [`ClientPool`] bounds and reuses connections.
//!
//! [`IntoParams`]: relstore::IntoParams
//! [`FromRow`]: relstore::FromRow
//!
//! Spawn a server on an ephemeral port, connect, and query it:
//!
//! ```
//! use relstore::Database;
//! use std::sync::Arc;
//!
//! // Any embedded database can be served. Port 0 picks an ephemeral port.
//! let db = Arc::new(Database::new());
//! db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT, state TEXT)")?;
//! let server = wire::serve(Arc::clone(&db), "127.0.0.1:0")?;
//!
//! // The client side: same typed surface as a local Session.
//! let mut client = wire::Client::connect(server.local_addr())?;
//! let insert = client.prepare("INSERT INTO jobs VALUES (?, ?, ?)")?;
//! client.execute_batch(&insert, (0..8i64).map(|i| (i, "alice", "idle")))?;
//!
//! let running: Vec<(i64, String)> = client.query_as(
//!     "SELECT job_id, owner FROM jobs WHERE state = ? ORDER BY job_id",
//!     ("idle",),
//! )?;
//! assert_eq!(running.len(), 8);
//! assert_eq!(running[0], (0, "alice".to_string()));
//!
//! // Transactions are RAII guards; a dropped guard — or a dropped
//! // connection — rolls back server-side.
//! {
//!     let mut txn = client.transaction()?;
//!     txn.execute("DELETE FROM jobs", ())?;
//!     // No commit: rolled back here.
//! }
//! let n: Vec<i64> = client.query_scalars("SELECT COUNT(*) FROM jobs", ())?;
//! assert_eq!(n, vec![8]);
//!
//! drop(client);
//! server.shutdown(); // graceful: drains in-flight statements
//! # Ok::<(), relstore::Error>(())
//! ```
//!
//! ## Pooling
//!
//! Services hold a [`ClientPool`] sized to the server's worker pool and
//! check a connection out per request. A connection returned mid-transaction
//! or after a transport error is discarded (closing it rolls the
//! transaction back server-side); everything else is reused. For write
//! paths, [`ClientPool::with_retries`] takes a fresh connection per attempt
//! and retries on retryable error classes, exactly like
//! [`Session::with_retries`](relstore::Session::with_retries) embedded.
//!
//! ## Observability
//!
//! The server counts its transport work in the engine's
//! [`OpStats`](relstore::OpStats): `net_bytes_in` / `net_bytes_out` /
//! `frames_decoded`, plus the `active_connections` high-water gauge
//! (merge = max, like `max_version_chain`). Read them from
//! [`ServerHandle::stats`]; engine work done on behalf of remote statements
//! lands on the database's own stats as usual.

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientPool, PooledClient, RemoteStatement, RemoteTransaction};
pub use protocol::{Request, Response, StmtRef, MAGIC, VERSION};
pub use server::{serve, serve_with, ServerConfig, ServerHandle};
