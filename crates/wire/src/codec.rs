//! Low-level binary encoding: hand-rolled put/get over byte buffers.
//!
//! Like the WAL, the codec avoids any serialization framework: every frame
//! is written by appending little-endian fixed-width integers and
//! length-prefixed byte strings to a `Vec<u8>`, and read back through a
//! bounds-checked [`Reader`]. Decoding untrusted input **never panics**: a
//! truncated buffer, an oversized length prefix or an unknown tag surfaces
//! as a clean [`Error::Net`].

use relstore::{Error, Result, Row, Value};

/// Hard upper bound on a single frame's payload, applied on both encode
/// (before writing to the socket) and decode (before allocating). Large
/// results stream as row pages well below this.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

// --- writing -----------------------------------------------------------------

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian u16.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u32.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian i64 (two's complement).
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an f64 by bit pattern — non-finite values (±inf, NaN payloads)
/// round-trip exactly.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string (u32 length + bytes).
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends one [`Value`] as a tag byte plus its payload.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Int(i) => {
            put_u8(buf, 1);
            put_i64(buf, *i);
        }
        Value::Double(d) => {
            put_u8(buf, 2);
            put_f64(buf, *d);
        }
        Value::Text(s) => {
            put_u8(buf, 3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            put_u8(buf, 4);
            put_u8(buf, u8::from(*b));
        }
        Value::Timestamp(t) => {
            put_u8(buf, 5);
            put_i64(buf, *t);
        }
    }
}

/// Appends a parameter/row value list (u16 count + values).
pub fn put_values(buf: &mut Vec<u8>, values: &[Value]) {
    put_u16(buf, values.len() as u16);
    for v in values {
        put_value(buf, v);
    }
}

/// Appends one result row (its values, u16-counted).
pub fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_values(buf, &row.values);
}

// --- reading -----------------------------------------------------------------

/// A bounds-checked cursor over a received frame payload.
///
/// Every accessor returns [`Error::Net`] instead of panicking when the
/// buffer is shorter than the encoding claims, and collection counts are
/// validated against the bytes actually remaining before anything is
/// allocated, so a hostile length prefix cannot force a huge allocation.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over one frame payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::net(format!(
                "truncated frame: wanted {n} more byte(s), {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64 by bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(Error::net(format!(
                "truncated frame: string claims {n} byte(s), {} remain",
                self.remaining()
            )));
        }
        std::str::from_utf8(self.take(n)?)
            .map_err(|e| Error::net(format!("frame carries invalid UTF-8: {e}")))
    }

    /// Reads one [`Value`].
    pub fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Double(self.f64()?)),
            3 => Ok(Value::Text(self.str()?.into())),
            4 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                other => Err(Error::net(format!("invalid BOOL byte {other}"))),
            },
            5 => Ok(Value::Timestamp(self.i64()?)),
            tag => Err(Error::net(format!("unknown value tag {tag}"))),
        }
    }

    /// Reads a u16-counted value list, validating the count against the
    /// bytes remaining before allocating.
    pub fn values(&mut self) -> Result<Vec<Value>> {
        let n = self.u16()? as usize;
        if n > self.remaining() {
            return Err(Error::net(format!(
                "truncated frame: value list claims {n} element(s), {} byte(s) remain",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }

    /// Reads one result row.
    pub fn row(&mut self) -> Result<Row> {
        Ok(Row::new(self.values()?))
    }

    /// Fails unless every byte of the payload was consumed — a frame with
    /// trailing garbage is a protocol error, not silently ignored data.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::net(format!(
                "frame carries {} unexpected trailing byte(s)",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 300);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, -0.5);
        put_str(&mut buf, "héllo\0world");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), -0.5);
        assert_eq!(r.str().unwrap(), "héllo\0world");
        r.expect_end().unwrap();
    }

    #[test]
    fn values_round_trip_including_non_finite_floats() {
        let values = vec![
            Value::Null,
            Value::Int(i64::MIN),
            Value::Double(f64::NAN),
            Value::Double(f64::NEG_INFINITY),
            Value::Text("".into()),
            Value::Text("a\0b".into()),
            Value::Bool(true),
            Value::Timestamp(-1),
        ];
        let mut buf = Vec::new();
        put_values(&mut buf, &values);
        let decoded = Reader::new(&buf).values().unwrap();
        assert_eq!(decoded.len(), values.len());
        for (d, v) in decoded.iter().zip(&values) {
            match (d, v) {
                (Value::Double(a), Value::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "doubles round-trip bit-exactly")
                }
                _ => assert_eq!(d, v),
            }
        }
    }

    #[test]
    fn truncation_and_bad_tags_error_cleanly() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Text("abcdef".into()));
        // Every strict prefix fails with Error::Net, never a panic.
        for cut in 0..buf.len() {
            let err = Reader::new(&buf[..cut]).value().unwrap_err();
            assert!(matches!(err, Error::Net(_)), "prefix {cut}: {err}");
        }
        // Unknown tag.
        assert!(Reader::new(&[9u8]).value().is_err());
        // Invalid bool payload.
        assert!(Reader::new(&[4u8, 2]).value().is_err());
        // A value-list count larger than the remaining bytes is rejected
        // before any allocation happens.
        let mut buf = Vec::new();
        put_u16(&mut buf, u16::MAX);
        assert!(Reader::new(&buf).values().is_err());
        // Invalid UTF-8 in a string payload.
        let mut buf = Vec::new();
        put_u8(&mut buf, 3);
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(Reader::new(&buf).value().is_err());
        // Trailing bytes are a protocol error.
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Int(1));
        put_u8(&mut buf, 0);
        let mut r = Reader::new(&buf);
        r.value().unwrap();
        assert!(r.expect_end().is_err());
    }
}
