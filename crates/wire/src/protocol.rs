//! The framed request/response protocol shared by server and client.
//!
//! Every message is one *frame*: a little-endian u32 payload length followed
//! by the payload, whose first byte is the opcode. Payloads are encoded with
//! the [`crate::codec`] primitives. A connection starts with a versioned
//! handshake (magic + protocol version from the client, a status byte back
//! from the server), after which the client sends [`Request`] frames and the
//! server answers each with one or more [`Response`] frames:
//!
//! * most requests produce exactly one response;
//! * a query produces a [`Response::RowsHeader`] followed by one or more
//!   [`Response::RowPage`]s (the last one marked), so large results stream
//!   in bounded frames;
//! * a [`Request::QueryBatch`] produces a [`Response::BatchHeader`] followed
//!   by one streamed result per binding, in binding order;
//! * any failure produces a single [`Response::Err`] frame carrying the
//!   engine's [`Error`] variant **and** its [`ErrorClass`], so a remote
//!   caller can branch on [`Error::is_retryable`] exactly like an embedded
//!   one (a write-write conflict stays retryable across the wire).

use crate::codec::{self, Reader, MAX_FRAME};
use relstore::{Error, ErrorClass, Result, Row, TimeoutKind, Value};
use std::io::{Read, Write};

/// The four magic bytes opening every handshake.
pub const MAGIC: [u8; 4] = *b"RSTW";

/// Protocol version spoken by this build. A server refuses a client whose
/// version differs (the protocol has no negotiation yet — versions are
/// expected to move in lockstep within one deployment).
///
/// Version 2 added the optional per-statement deadline to the four
/// statement-carrying requests and the `Timeout` / `ResourceExhausted`
/// error tags.
pub const VERSION: u16 = 2;

/// A statement reference in a request: raw SQL text (resolved through the
/// server's statement cache) or a handle returned by a prior
/// [`Request::Prepare`] on the same connection.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtRef {
    /// SQL text, parsed (or cache-hit) server-side.
    Sql(String),
    /// A prepared-statement handle, valid only on the connection that
    /// prepared it.
    Id(u32),
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Parse a statement and return a per-connection handle for it.
    Prepare {
        /// The SQL text, which may contain `?` placeholders.
        sql: String,
    },
    /// Execute any statement (DML, DDL, SELECT, or transaction control).
    Execute {
        /// The statement to run.
        stmt: StmtRef,
        /// Positional parameter bindings.
        params: Vec<Value>,
        /// Client-requested statement deadline in milliseconds; the server
        /// enforces the *minimum* of this and its own configured default.
        deadline_ms: Option<u32>,
    },
    /// Execute a SELECT; a non-query statement is an error.
    Query {
        /// The statement to run.
        stmt: StmtRef,
        /// Positional parameter bindings.
        params: Vec<Value>,
        /// Client-requested statement deadline in milliseconds.
        deadline_ms: Option<u32>,
    },
    /// Execute a prepared DML statement once per binding under one catalog
    /// guard and one WAL append (see `Database::execute_batch`).
    ExecuteBatch {
        /// The statement to run.
        stmt: StmtRef,
        /// One positional binding list per execution.
        bindings: Vec<Vec<Value>>,
        /// Client-requested deadline for the whole batch in milliseconds.
        deadline_ms: Option<u32>,
    },
    /// Execute a prepared SELECT once per binding under one shared guard.
    QueryBatch {
        /// The statement to run.
        stmt: StmtRef,
        /// One positional binding list per execution.
        bindings: Vec<Vec<Value>>,
        /// Client-requested deadline for the whole batch in milliseconds.
        deadline_ms: Option<u32>,
    },
    /// Open the connection's transaction (at most one may be open).
    Begin,
    /// Commit the connection's transaction.
    Commit,
    /// Roll back the connection's transaction.
    Rollback,
    /// Drop a prepared-statement handle.
    CloseStmt {
        /// The handle to drop.
        id: u32,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A statement was prepared.
    Prepared {
        /// The per-connection handle.
        id: u32,
        /// Number of `?` placeholders the statement expects.
        params: u16,
    },
    /// A DML statement affected this many rows.
    Affected(u64),
    /// A DDL or transaction-control statement completed. `txn_open` is the
    /// connection's transaction state *after* the request — the server is
    /// authoritative, so the client never has to guess whether a statement
    /// (SQL-text `BEGIN;`, a prepared `COMMIT` handle, ...) changed it.
    Ack {
        /// True when a transaction is open on the connection.
        txn_open: bool,
    },
    /// A query started streaming: its output column names, in projection
    /// order. Followed by [`Response::RowPage`] frames.
    RowsHeader {
        /// Output column names.
        columns: Vec<String>,
    },
    /// One page of result rows. `last` marks the final page of the result.
    RowPage {
        /// The rows of this page.
        rows: Vec<Row>,
        /// True on the result's final page.
        last: bool,
    },
    /// A query batch started: `count` streamed results follow.
    BatchHeader {
        /// Number of results (one per binding).
        count: u32,
    },
    /// The request failed; the connection remains usable.
    Err(Error),
}

// --- error transport ---------------------------------------------------------

fn error_variant(e: &Error) -> (u8, &str) {
    match e {
        Error::NotFound(s) => (0, s),
        Error::AlreadyExists(s) => (1, s),
        Error::Type(s) => (2, s),
        Error::Parse(s) => (3, s),
        Error::Constraint(s) => (4, s),
        Error::LockConflict(s) => (5, s),
        Error::Busy(s) => (6, s),
        Error::TxnClosed(s) => (7, s),
        Error::Wal(s) => (8, s),
        Error::Net(s) => (9, s),
        Error::Internal(s) => (10, s),
        Error::Io(s) => (11, s),
        Error::Corruption(s) => (12, s),
        // Both timeout kinds share tag 13; the class byte disambiguates
        // (LockWait is Retryable, Statement is Logic), so the kind is
        // reconstructed without a second discriminant on the wire.
        Error::Timeout { msg, .. } => (13, msg),
        Error::ResourceExhausted(s) => (14, s),
    }
}

fn class_byte(class: ErrorClass) -> u8 {
    match class {
        ErrorClass::Retryable => 0,
        ErrorClass::Logic => 1,
        ErrorClass::Constraint => 2,
        ErrorClass::Internal => 3,
    }
}

fn put_error(buf: &mut Vec<u8>, e: &Error) {
    let (tag, msg) = error_variant(e);
    codec::put_u8(buf, tag);
    codec::put_u8(buf, class_byte(e.class()));
    codec::put_str(buf, msg);
}

fn get_error(r: &mut Reader<'_>) -> Result<Error> {
    let tag = r.u8()?;
    let class = r.u8()?;
    let msg = r.str()?.to_string();
    Ok(match tag {
        0 => Error::NotFound(msg),
        1 => Error::AlreadyExists(msg),
        2 => Error::Type(msg),
        3 => Error::Parse(msg),
        4 => Error::Constraint(msg),
        5 => Error::LockConflict(msg),
        6 => Error::Busy(msg),
        7 => Error::TxnClosed(msg),
        8 => Error::Wal(msg),
        9 => Error::Net(msg),
        10 => Error::Internal(msg),
        11 => Error::Io(msg),
        12 => Error::Corruption(msg),
        13 => Error::Timeout {
            kind: if class == 0 {
                TimeoutKind::LockWait
            } else {
                TimeoutKind::Statement
            },
            msg,
        },
        14 => Error::ResourceExhausted(msg),
        // A variant from a newer peer: fall back on the transported class so
        // at least retryability survives.
        _ => match class {
            0 => Error::Busy(msg),
            1 => Error::Type(msg),
            2 => Error::Constraint(msg),
            _ => Error::Internal(msg),
        },
    })
}

// --- statement references ----------------------------------------------------

fn put_stmt(buf: &mut Vec<u8>, stmt: &StmtRef) {
    match stmt {
        StmtRef::Sql(sql) => {
            codec::put_u8(buf, 0);
            codec::put_str(buf, sql);
        }
        StmtRef::Id(id) => {
            codec::put_u8(buf, 1);
            codec::put_u32(buf, *id);
        }
    }
}

fn get_stmt(r: &mut Reader<'_>) -> Result<StmtRef> {
    match r.u8()? {
        0 => Ok(StmtRef::Sql(r.str()?.to_string())),
        1 => Ok(StmtRef::Id(r.u32()?)),
        tag => Err(Error::net(format!("unknown statement-ref tag {tag}"))),
    }
}

fn put_bindings(buf: &mut Vec<u8>, bindings: &[Vec<Value>]) {
    codec::put_u32(buf, bindings.len() as u32);
    for b in bindings {
        codec::put_values(buf, b);
    }
}

fn put_deadline(buf: &mut Vec<u8>, deadline_ms: Option<u32>) {
    match deadline_ms {
        Some(ms) => {
            codec::put_u8(buf, 1);
            codec::put_u32(buf, ms);
        }
        None => codec::put_u8(buf, 0),
    }
}

fn get_deadline(r: &mut Reader<'_>) -> Result<Option<u32>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u32()?)),
        b => Err(Error::net(format!("invalid deadline presence byte {b}"))),
    }
}

fn get_bindings(r: &mut Reader<'_>) -> Result<Vec<Vec<Value>>> {
    let n = r.u32()? as usize;
    // Each binding costs at least its 2-byte value count, so a hostile
    // count cannot force an allocation larger than the frame itself.
    if n > r.remaining() / 2 {
        return Err(Error::net(format!(
            "truncated frame: binding list claims {n} element(s), {} byte(s) remain",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.values()?);
    }
    Ok(out)
}

// --- request / response frames -----------------------------------------------

impl Request {
    /// Encodes the request as one frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Prepare { sql } => {
                codec::put_u8(&mut buf, 1);
                codec::put_str(&mut buf, sql);
            }
            Request::Execute {
                stmt,
                params,
                deadline_ms,
            } => {
                codec::put_u8(&mut buf, 2);
                put_stmt(&mut buf, stmt);
                codec::put_values(&mut buf, params);
                put_deadline(&mut buf, *deadline_ms);
            }
            Request::Query {
                stmt,
                params,
                deadline_ms,
            } => {
                codec::put_u8(&mut buf, 3);
                put_stmt(&mut buf, stmt);
                codec::put_values(&mut buf, params);
                put_deadline(&mut buf, *deadline_ms);
            }
            Request::ExecuteBatch {
                stmt,
                bindings,
                deadline_ms,
            } => {
                codec::put_u8(&mut buf, 4);
                put_stmt(&mut buf, stmt);
                put_bindings(&mut buf, bindings);
                put_deadline(&mut buf, *deadline_ms);
            }
            Request::QueryBatch {
                stmt,
                bindings,
                deadline_ms,
            } => {
                codec::put_u8(&mut buf, 5);
                put_stmt(&mut buf, stmt);
                put_bindings(&mut buf, bindings);
                put_deadline(&mut buf, *deadline_ms);
            }
            Request::Begin => codec::put_u8(&mut buf, 6),
            Request::Commit => codec::put_u8(&mut buf, 7),
            Request::Rollback => codec::put_u8(&mut buf, 8),
            Request::CloseStmt { id } => {
                codec::put_u8(&mut buf, 9);
                codec::put_u32(&mut buf, *id);
            }
        }
        buf
    }

    /// Decodes one frame payload into a request.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            1 => Request::Prepare {
                sql: r.str()?.to_string(),
            },
            2 => Request::Execute {
                stmt: get_stmt(&mut r)?,
                params: r.values()?,
                deadline_ms: get_deadline(&mut r)?,
            },
            3 => Request::Query {
                stmt: get_stmt(&mut r)?,
                params: r.values()?,
                deadline_ms: get_deadline(&mut r)?,
            },
            4 => Request::ExecuteBatch {
                stmt: get_stmt(&mut r)?,
                bindings: get_bindings(&mut r)?,
                deadline_ms: get_deadline(&mut r)?,
            },
            5 => Request::QueryBatch {
                stmt: get_stmt(&mut r)?,
                bindings: get_bindings(&mut r)?,
                deadline_ms: get_deadline(&mut r)?,
            },
            6 => Request::Begin,
            7 => Request::Commit,
            8 => Request::Rollback,
            9 => Request::CloseStmt { id: r.u32()? },
            op => return Err(Error::net(format!("unknown request opcode {op}"))),
        };
        r.expect_end()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as one frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Prepared { id, params } => {
                codec::put_u8(&mut buf, 1);
                codec::put_u32(&mut buf, *id);
                codec::put_u16(&mut buf, *params);
            }
            Response::Affected(n) => {
                codec::put_u8(&mut buf, 2);
                codec::put_u64(&mut buf, *n);
            }
            Response::Ack { txn_open } => {
                codec::put_u8(&mut buf, 3);
                codec::put_u8(&mut buf, u8::from(*txn_open));
            }
            Response::RowsHeader { columns } => {
                codec::put_u8(&mut buf, 4);
                codec::put_u16(&mut buf, columns.len() as u16);
                for c in columns {
                    codec::put_str(&mut buf, c);
                }
            }
            Response::RowPage { rows, last } => {
                return encode_row_page(rows, *last);
            }
            Response::BatchHeader { count } => {
                codec::put_u8(&mut buf, 6);
                codec::put_u32(&mut buf, *count);
            }
            Response::Err(e) => {
                codec::put_u8(&mut buf, 7);
                put_error(&mut buf, e);
            }
        }
        buf
    }

    /// Decodes one frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            1 => Response::Prepared {
                id: r.u32()?,
                params: r.u16()?,
            },
            2 => Response::Affected(r.u64()?),
            3 => Response::Ack {
                txn_open: match r.u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(Error::net(format!("invalid txn-open byte {b}"))),
                },
            },
            4 => {
                let n = r.u16()? as usize;
                // Each column name costs at least its 4-byte length prefix,
                // so a hostile count cannot amplify the allocation.
                if n > r.remaining() / 4 {
                    return Err(Error::net(format!(
                        "truncated frame: header claims {n} column(s), {} byte(s) remain",
                        r.remaining()
                    )));
                }
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(r.str()?.to_string());
                }
                Response::RowsHeader { columns }
            }
            5 => {
                let last = match r.u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(Error::net(format!("invalid last-page byte {b}"))),
                };
                let n = r.u32()? as usize;
                // A row costs at least its 2-byte value count: bound the
                // pre-allocation by the bytes actually present.
                if n > r.remaining() / 2 {
                    return Err(Error::net(format!(
                        "truncated frame: page claims {n} row(s), {} byte(s) remain",
                        r.remaining()
                    )));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(r.row()?);
                }
                Response::RowPage { rows, last }
            }
            6 => Response::BatchHeader { count: r.u32()? },
            7 => Response::Err(get_error(&mut r)?),
            op => return Err(Error::net(format!("unknown response opcode {op}"))),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

/// Encodes a [`Response::RowPage`] frame payload from borrowed rows, so the
/// server can stream pages of a materialised result without cloning them.
pub fn encode_row_page(rows: &[Row], last: bool) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u8(&mut buf, 5);
    codec::put_u8(&mut buf, u8::from(last));
    codec::put_u32(&mut buf, rows.len() as u32);
    for row in rows {
        codec::put_row(&mut buf, row);
    }
    buf
}

/// Parses an already-read 6-byte client hello (magic + version).
pub fn client_version(hello: &[u8; 6]) -> Result<u16> {
    if hello[..4] != MAGIC {
        return Err(Error::net("peer did not speak the relstore wire protocol"));
    }
    Ok(u16::from_le_bytes([hello[4], hello[5]]))
}

// --- frame IO ----------------------------------------------------------------

/// Maps an IO failure onto the engine's error taxonomy.
pub(crate) fn io_err(e: std::io::Error) -> Error {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        Error::net("connection closed by peer")
    } else {
        Error::net(format!("io error: {e}"))
    }
}

/// Writes one frame (length prefix + payload), refusing oversized payloads
/// before anything reaches the socket. Returns the bytes written.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<u64> {
    if payload.is_empty() || payload.len() > MAX_FRAME {
        return Err(Error::net(format!(
            "refusing to send a frame of {} byte(s) (limit {MAX_FRAME})",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    w.write_all(payload).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    Ok(payload.len() as u64 + 4)
}

/// Reads one frame payload, rejecting empty and oversized length prefixes
/// before allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(io_err)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(Error::net(format!(
            "peer announced a frame of {len} byte(s) (limit {MAX_FRAME})"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(io_err)?;
    Ok(payload)
}

// --- handshake ---------------------------------------------------------------

/// Handshake outcome sent by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeStatus {
    /// The connection is accepted.
    Ok,
    /// The server is at its connection limit; retry later ([`Error::Busy`]).
    Busy,
    /// The client speaks an incompatible protocol ([`Error::Net`]).
    Rejected,
}

/// Writes the client side of the handshake (magic + version).
pub fn write_hello(w: &mut impl Write) -> Result<()> {
    let mut buf = Vec::with_capacity(6);
    buf.extend_from_slice(&MAGIC);
    codec::put_u16(&mut buf, VERSION);
    w.write_all(&buf).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Reads and validates the client hello, returning the client's version.
pub fn read_hello(r: &mut impl Read) -> Result<u16> {
    let mut buf = [0u8; 6];
    r.read_exact(&mut buf).map_err(io_err)?;
    if buf[..4] != MAGIC {
        return Err(Error::net("peer did not speak the relstore wire protocol"));
    }
    Ok(u16::from_le_bytes([buf[4], buf[5]]))
}

/// Writes the server's handshake response. Returns the bytes written.
pub fn write_handshake_response(
    w: &mut impl Write,
    status: HandshakeStatus,
    message: &str,
) -> Result<u64> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    codec::put_u16(&mut buf, VERSION);
    codec::put_u8(
        &mut buf,
        match status {
            HandshakeStatus::Ok => 0,
            HandshakeStatus::Busy => 1,
            HandshakeStatus::Rejected => 2,
        },
    );
    codec::put_str(&mut buf, message);
    w.write_all(&buf).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    Ok(buf.len() as u64)
}

/// Reads the server's handshake response, turning a non-OK status into the
/// error the client should surface.
pub fn read_handshake_response(r: &mut impl Read) -> Result<()> {
    let mut head = [0u8; 7];
    r.read_exact(&mut head).map_err(io_err)?;
    if head[..4] != MAGIC {
        return Err(Error::net("peer did not speak the relstore wire protocol"));
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    let status = head[6];
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(io_err)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(Error::net("oversized handshake message"));
    }
    let mut msg = vec![0u8; len];
    r.read_exact(&mut msg).map_err(io_err)?;
    let msg = String::from_utf8_lossy(&msg).into_owned();
    match status {
        0 if version == VERSION => Ok(()),
        0 => Err(Error::net(format!(
            "server speaks protocol version {version}, this client speaks {VERSION}"
        ))),
        1 => Err(Error::busy(if msg.is_empty() {
            "server at connection limit".to_string()
        } else {
            msg
        })),
        _ => Err(Error::net(if msg.is_empty() {
            "server rejected the connection".to_string()
        } else {
            msg
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Prepare {
                sql: "SELECT * FROM jobs WHERE job_id = ?".into(),
            },
            Request::Execute {
                stmt: StmtRef::Sql("DELETE FROM jobs".into()),
                params: vec![],
                deadline_ms: None,
            },
            Request::Execute {
                stmt: StmtRef::Sql("DELETE FROM jobs".into()),
                params: vec![],
                deadline_ms: Some(250),
            },
            Request::Query {
                stmt: StmtRef::Id(7),
                params: vec![Value::Int(1), Value::Null, Value::Text("x'y".into())],
                deadline_ms: Some(5_000),
            },
            Request::ExecuteBatch {
                stmt: StmtRef::Id(0),
                bindings: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
                deadline_ms: None,
            },
            Request::QueryBatch {
                stmt: StmtRef::Sql("SELECT 1".into()),
                bindings: vec![vec![]],
                deadline_ms: Some(1),
            },
            Request::Begin,
            Request::Commit,
            Request::Rollback,
            Request::CloseStmt { id: 3 },
        ];
        for req in reqs {
            let payload = req.encode();
            assert_eq!(Request::decode(&payload).unwrap(), req);
            // Every strict prefix fails cleanly.
            for cut in 0..payload.len() {
                assert!(Request::decode(&payload[..cut]).is_err());
            }
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Prepared { id: 9, params: 2 },
            Response::Affected(42),
            Response::Ack { txn_open: false },
            Response::Ack { txn_open: true },
            Response::RowsHeader {
                columns: vec!["job_id".into(), "jobs.state".into()],
            },
            Response::RowPage {
                rows: vec![
                    Row::new(vec![Value::Int(1), Value::Text("idle".into())]),
                    Row::new(vec![Value::Int(2), Value::Null]),
                ],
                last: true,
            },
            Response::BatchHeader { count: 3 },
            Response::Err(Error::LockConflict("table jobs".into())),
        ];
        for resp in resps {
            let payload = resp.encode();
            assert_eq!(Response::decode(&payload).unwrap(), resp);
            for cut in 0..payload.len() {
                assert!(Response::decode(&payload[..cut]).is_err());
            }
        }
    }

    #[test]
    fn errors_keep_their_class_across_the_wire() {
        for e in [
            Error::LockConflict("w-w".into()),
            Error::busy("checkpoint"),
            Error::parse("bad token"),
            Error::constraint("pk"),
            Error::not_found("jobs"),
            Error::net("reset"),
            Error::internal("bug"),
            Error::io("fsync failed"),
            Error::corruption("bad crc"),
            Error::statement_timeout("slow scan"),
            Error::lock_wait_timeout("table jobs"),
            Error::resource_exhausted("rows materialized"),
        ] {
            let decoded = match Response::decode(&Response::Err(e.clone()).encode()).unwrap() {
                Response::Err(d) => d,
                other => panic!("expected Err, got {other:?}"),
            };
            assert_eq!(decoded, e);
            assert_eq!(decoded.class(), e.class());
        }
    }

    #[test]
    fn frame_io_round_trips_and_enforces_limits() {
        let payload = Request::Begin.encode();
        let mut buf = Vec::new();
        let written = write_frame(&mut buf, &payload).unwrap();
        assert_eq!(written as usize, payload.len() + 4);
        let read = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(read, payload);

        // Empty and oversized frames are refused on both sides.
        assert!(write_frame(&mut Vec::new(), &[]).is_err());
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
        let empty = 0u32.to_le_bytes();
        assert!(read_frame(&mut empty.as_slice()).is_err());
        // A truncated stream errors instead of blocking forever (EOF).
        assert!(read_frame(&mut [4u8, 0, 0, 0, 1].as_slice()).is_err());
    }

    #[test]
    fn handshake_round_trips() {
        let mut buf = Vec::new();
        write_hello(&mut buf).unwrap();
        assert_eq!(read_hello(&mut buf.as_slice()).unwrap(), VERSION);
        assert!(read_hello(&mut b"XXXXxx".as_slice()).is_err());

        let mut buf = Vec::new();
        write_handshake_response(&mut buf, HandshakeStatus::Ok, "").unwrap();
        read_handshake_response(&mut buf.as_slice()).unwrap();

        let mut buf = Vec::new();
        write_handshake_response(&mut buf, HandshakeStatus::Busy, "64 connections open").unwrap();
        let err = read_handshake_response(&mut buf.as_slice()).unwrap_err();
        assert!(err.is_retryable(), "admission-control rejection is retryable");

        let mut buf = Vec::new();
        write_handshake_response(&mut buf, HandshakeStatus::Rejected, "version 9").unwrap();
        let err = read_handshake_response(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, Error::Net(_)));
    }
}
