//! The threaded TCP server: an accept loop feeding a worker pool.
//!
//! [`serve`] binds a listener over an `Arc<Database>` and returns a
//! [`ServerHandle`]. One thread accepts connections and applies admission
//! control (beyond [`ServerConfig::max_connections`] a client is turned away
//! with a retryable busy handshake); a pool of worker threads each serves one
//! connection at a time, so `workers` bounds the number of *concurrently
//! served* connections and accepted-but-unserved ones wait in the queue.
//!
//! Per-connection state mirrors a [`relstore::Session`]: a table of prepared
//! statements (handles are connection-scoped) and at most one open
//! transaction, which **rolls back automatically when the connection drops**
//! — a client that dies mid-transaction releases its locks the moment the
//! socket closes, exactly like a dropped RAII guard in process.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] stops accepting, lets
//! every in-flight statement finish and its response flush, then closes the
//! connections (rolling back their open transactions) and joins the threads.
//! Sockets are polled with a short read timeout so idle connections observe
//! the shutdown flag at frame boundaries; a frame whose bytes have started
//! arriving is always read and answered before the connection closes.
//!
//! A stalled or vanished client cannot pin a worker thread: a connection
//! silent past [`ServerConfig::idle_timeout`] at a frame boundary is reaped
//! (closed quietly, its open transaction rolled back), a peer that stalls
//! mid-frame past [`ServerConfig::read_timeout`] fails the connection with
//! a transport error, and [`ServerConfig::write_timeout`] bounds how long a
//! response write may block on a full receive window.

use crate::protocol::{
    self, write_frame, HandshakeStatus, Request, Response, StmtRef, VERSION,
};
use relstore::sql::ast::Statement;
use relstore::stats::SharedStats;
use relstore::wal::TxnId;
use relstore::{
    Database, Error, ExecResult, Governance, OpStats, Prepared, QueryResult, Result, Value,
};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for a [`serve_with`] call.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads; each serves one connection at a time, so this bounds
    /// the number of concurrently *served* connections.
    pub workers: usize,
    /// Admission-control limit: connections beyond this (served + queued)
    /// are refused with a retryable busy handshake.
    pub max_connections: usize,
    /// Maximum rows per streamed [`Response::RowPage`] frame.
    pub page_rows: usize,
    /// Socket read timeout used to poll the shutdown flag at frame
    /// boundaries; bounds how long shutdown waits for idle connections.
    pub poll_interval: Duration,
    /// A connection that sends nothing for this long at a frame boundary is
    /// reaped: closed quietly, its open transaction rolled back, and its
    /// worker thread freed. The client sees the close as a transport error
    /// on its next request; [`crate::ClientPool::with_retries`] turns that
    /// into a retry on a fresh connection.
    pub idle_timeout: Duration,
    /// Once a frame has *started* arriving, the peer must keep making
    /// progress: a stall longer than this mid-frame fails the connection
    /// with [`Error::Net`] instead of pinning the worker forever. The timer
    /// resets on every successful read.
    pub read_timeout: Duration,
    /// OS-level socket write timeout: a peer that stops draining its
    /// receive window fails the in-flight response rather than blocking the
    /// worker indefinitely.
    pub write_timeout: Duration,
    /// Server-side default statement deadline. A request carrying its own
    /// deadline gets the *tighter* of the two; `None` imposes no server
    /// default. Expiry surfaces a statement-deadline [`Error::Timeout`].
    pub statement_deadline: Option<Duration>,
    /// Cap on rows materialized by one statement (engine-side, before any
    /// response page is built); exceeded → [`Error::ResourceExhausted`].
    pub max_result_rows: Option<u64>,
    /// Cap on approximate result bytes materialized by one statement;
    /// exceeded → [`Error::ResourceExhausted`].
    pub max_result_bytes: Option<u64>,
    /// How long a write statement waits for a conflicted table lock before
    /// failing with a retryable lock-wait [`Error::Timeout`]. Zero keeps
    /// the embedded engine's fail-fast [`Error::LockConflict`] behaviour.
    pub lock_wait_timeout: Duration,
    /// A transaction idle (no statement, commit, or rollback) for longer
    /// than this is aborted by the reaper thread: locks released, versions
    /// undone, counted in `txns_reaped`. `None` disables the reaper.
    pub idle_txn_timeout: Option<Duration>,
    /// How often the reaper thread scans for idle transactions.
    pub reap_interval: Duration,
    /// Arms the engine's slow-query log: statements slower than this are
    /// captured (with a wait breakdown) in the `rel_slow_queries` system
    /// table, queryable by any client over plain SQL. `None` (the default)
    /// leaves the log as the database had it — disarmed unless the embedder
    /// already called `Database::set_slow_query_threshold`.
    pub slow_query_threshold: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 16,
            max_connections: 64,
            page_rows: 256,
            poll_interval: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(60),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            statement_deadline: Some(Duration::from_secs(30)),
            max_result_rows: None,
            max_result_bytes: Some(64 * 1024 * 1024),
            lock_wait_timeout: Duration::from_millis(100),
            idle_txn_timeout: Some(Duration::from_secs(300)),
            reap_interval: Duration::from_secs(1),
            slow_query_threshold: None,
        }
    }
}

struct Shared {
    db: Arc<Database>,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Connections currently admitted (being served or queued for a worker).
    active: AtomicUsize,
    stats: SharedStats,
}

/// A running server: its address, live counters, and the shutdown switch.
///
/// Dropping the handle shuts the server down (best-effort); call
/// [`ServerHandle::shutdown`] to do it explicitly and join the threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("active_connections", &self.active_connections())
            .finish()
    }
}

/// Starts a server over `db` on `addr` with the default [`ServerConfig`].
/// Bind to port 0 (`"127.0.0.1:0"`) for an ephemeral port and read it back
/// from [`ServerHandle::local_addr`].
pub fn serve(db: Arc<Database>, addr: impl ToSocketAddrs) -> Result<ServerHandle> {
    serve_with(db, addr, ServerConfig::default())
}

/// Starts a server over `db` on `addr` with an explicit configuration.
pub fn serve_with(
    db: Arc<Database>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> Result<ServerHandle> {
    let config = ServerConfig {
        workers: config.workers.max(1),
        max_connections: config.max_connections.max(1),
        page_rows: config.page_rows.max(1),
        // Zero would disarm the OS write timeout (set_write_timeout rejects
        // it) or make every boundary wait an instant reap.
        idle_timeout: config.idle_timeout.max(Duration::from_millis(1)),
        read_timeout: config.read_timeout.max(Duration::from_millis(1)),
        write_timeout: config.write_timeout.max(Duration::from_millis(1)),
        reap_interval: config.reap_interval.max(Duration::from_millis(1)),
        ..config
    };
    if let Some(threshold) = config.slow_query_threshold {
        db.set_slow_query_threshold(Some(threshold));
    }
    let listener = TcpListener::bind(addr).map_err(protocol::io_err)?;
    let addr = listener.local_addr().map_err(protocol::io_err)?;
    let shared = Arc::new(Shared {
        db,
        config,
        shutdown: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        stats: SharedStats::default(),
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers = (0..shared.config.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || worker_loop(&shared, &rx))
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(shared, &listener, &tx))
    };
    let reaper = shared.config.idle_txn_timeout.map(|idle| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || reaper_loop(&shared, idle))
    });
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        reaper,
        workers,
    })
}

/// The idle-transaction reaper: every [`ServerConfig::reap_interval`] it
/// aborts transactions idle past `idle` via [`Database::reap_idle`], so an
/// abandoned-but-connected client (open socket, silent transaction) cannot
/// pin locks or the vacuum horizon forever. Connection-level idle reaping
/// (`idle_timeout`) handles *dead* sockets; this handles live ones.
fn reaper_loop(shared: &Shared, idle: Duration) {
    let nap = shared.config.poll_interval.min(shared.config.reap_interval);
    let mut due = std::time::Instant::now() + shared.config.reap_interval;
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(nap);
        if std::time::Instant::now() >= due {
            shared.db.reap_idle(idle);
            due = std::time::Instant::now() + shared.config.reap_interval;
        }
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently admitted (being served or queued).
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Cumulative server-side counters: the network fields
    /// (`net_bytes_in` / `net_bytes_out` / `frames_decoded` and the
    /// `active_connections` high-water gauge) plus nothing else — engine
    /// work is accounted on the database's own stats as usual.
    pub fn stats(&self) -> OpStats {
        self.shared.stats.snapshot()
    }

    /// The served database.
    pub fn database(&self) -> &Arc<Database> {
        &self.shared.db
    }

    /// Shuts the server down gracefully: stops accepting, drains in-flight
    /// statements (each pending request finishes and its response flushes),
    /// rolls back transactions left open by their connections, and joins
    /// every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(reaper) = self.reaper.take() {
            let _ = reaper.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// --- accept loop -------------------------------------------------------------

fn accept_loop(shared: Arc<Shared>, listener: &TcpListener, tx: &mpsc::Sender<TcpStream>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let admitted = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        if admitted > shared.config.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            // Turn the client away on a short-lived thread so a slow (or
            // silent) peer cannot stall the accept loop.
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reject_busy(&shared, stream));
            continue;
        }
        // High-water connection gauge (merge = max, like max_version_chain).
        shared.stats.record(&OpStats {
            active_connections: admitted as u64,
            ..Default::default()
        });
        if tx.send(stream).is_err() {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            break;
        }
    }
    // Dropping `tx` (by returning) lets idle workers exit.
}

/// Admission-control rejection: consume the client's hello first — closing
/// a socket with unread received data can emit a TCP RST that destroys the
/// response in flight — then answer with a retryable busy handshake.
fn reject_busy(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut hello = [0u8; 6];
    let _ = stream.read_exact(&mut hello);
    let written = protocol::write_handshake_response(
        &mut stream,
        HandshakeStatus::Busy,
        &format!(
            "server at its limit of {} connection(s); retry later",
            shared.config.max_connections
        ),
    )
    .unwrap_or(0);
    shared.stats.record(&OpStats {
        net_bytes_in: hello.len() as u64,
        net_bytes_out: written,
        ..Default::default()
    });
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => {
                serve_connection(shared, stream);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(_) => return, // accept loop gone and queue drained
        }
    }
}

// --- per-connection serving --------------------------------------------------

/// Prepared-statement handles and the at-most-one open transaction of one
/// connection.
struct ConnState {
    stmts: HashMap<u32, Prepared>,
    next_stmt: u32,
    txn: Option<TxnId>,
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut conn = ConnState {
        stmts: HashMap::new(),
        next_stmt: 1,
        txn: None,
    };
    let _ = serve_frames(shared, &mut stream, &mut conn);
    // Whatever ended the connection — clean close, protocol error, shutdown
    // — an open transaction must not outlive it: roll it back and release
    // its locks, like a dropped RAII guard.
    if let Some(txn) = conn.txn.take() {
        let _ = shared.db.rollback(txn);
    }
}

fn serve_frames(shared: &Shared, stream: &mut TcpStream, conn: &mut ConnState) -> Result<()> {
    // Handshake: magic + version in, status out.
    let mut hello = [0u8; 6];
    if !read_full(stream, &mut hello, shared, true)? {
        return Ok(());
    }
    let version = protocol::client_version(&hello)?;
    let mut local = OpStats {
        net_bytes_in: hello.len() as u64,
        ..Default::default()
    };
    if version != VERSION {
        local.net_bytes_out += protocol::write_handshake_response(
            stream,
            HandshakeStatus::Rejected,
            &format!("server speaks protocol version {VERSION}, client spoke {version}"),
        )?;
        shared.stats.record(&local);
        return Ok(());
    }
    local.net_bytes_out += protocol::write_handshake_response(stream, HandshakeStatus::Ok, "")?;
    shared.stats.record(&local);

    loop {
        let Some(payload) = read_frame_polling(stream, shared)? else {
            return Ok(()); // clean disconnect or shutdown at a frame boundary
        };
        let mut local = OpStats {
            net_bytes_in: payload.len() as u64 + 4,
            ..Default::default()
        };
        let req = match Request::decode(&payload) {
            Ok(req) => {
                local.frames_decoded += 1;
                req
            }
            Err(e) => {
                // A malformed frame poisons the stream: answer and close.
                local.net_bytes_out += write_frame(stream, &Response::Err(e).encode())?;
                shared.stats.record(&local);
                return Ok(());
            }
        };
        let outcome = handle_request(shared, conn, req);
        local.net_bytes_out += write_outcome(stream, outcome, shared.config.page_rows)?;
        shared.stats.record(&local);
    }
}

/// What one request produces: a single response frame, a streamed query
/// result, or a streamed batch of results.
enum Outcome {
    One(Response),
    Rows(QueryResult),
    Batch(Vec<QueryResult>),
}

fn handle_request(shared: &Shared, conn: &mut ConnState, req: Request) -> Outcome {
    let db = &shared.db;
    match req {
        Request::Prepare { sql } => match db.prepare(&sql) {
            Ok(prepared) => {
                let id = conn.next_stmt;
                conn.next_stmt += 1;
                let params = prepared.param_count() as u16;
                conn.stmts.insert(id, prepared);
                Outcome::One(Response::Prepared { id, params })
            }
            Err(e) => Outcome::One(Response::Err(e)),
        },
        Request::Execute {
            stmt,
            params,
            deadline_ms,
        } => {
            let gov = governance_for(shared, deadline_ms);
            match execute_stmt(db, conn, stmt, params, &gov) {
                Ok(ExecResult::Query(q)) => Outcome::Rows(q),
                Ok(ExecResult::Affected(n)) => Outcome::One(Response::Affected(n as u64)),
                Ok(ExecResult::Ack) => Outcome::One(ack(conn)),
                Err(e) => Outcome::One(Response::Err(e)),
            }
        }
        Request::Query {
            stmt,
            params,
            deadline_ms,
        } => {
            let gov = governance_for(shared, deadline_ms);
            match execute_stmt(db, conn, stmt, params, &gov).and_then(ExecResult::query) {
                Ok(q) => Outcome::Rows(q),
                Err(e) => Outcome::One(Response::Err(e)),
            }
        }
        Request::ExecuteBatch {
            stmt,
            bindings,
            deadline_ms,
        } => {
            let gov = governance_for(shared, deadline_ms);
            let run = resolve_stmt(conn, db, stmt).and_then(|prepared| match conn.txn {
                Some(txn) => db.execute_batch_in_governed(txn, &prepared, &bindings, &gov),
                None => db.execute_batch_governed(&prepared, &bindings, &gov),
            });
            match run {
                Ok(n) => Outcome::One(Response::Affected(n as u64)),
                Err(e) => Outcome::One(Response::Err(e)),
            }
        }
        Request::QueryBatch {
            stmt,
            bindings,
            deadline_ms,
        } => {
            let gov = governance_for(shared, deadline_ms);
            let run = resolve_stmt(conn, db, stmt).and_then(|prepared| match conn.txn {
                Some(txn) => db.query_batch_in_governed(txn, &prepared, &bindings, &gov),
                None => db.query_batch_governed(&prepared, &bindings, &gov),
            });
            match run {
                Ok(results) => Outcome::Batch(results),
                Err(e) => Outcome::One(Response::Err(e)),
            }
        }
        Request::Begin => Outcome::One(match txn_begin(db, conn) {
            Ok(()) => ack(conn),
            Err(e) => Response::Err(e),
        }),
        Request::Commit => Outcome::One(match txn_finish(db, conn, true) {
            Ok(()) => ack(conn),
            Err(e) => Response::Err(e),
        }),
        Request::Rollback => Outcome::One(match txn_finish(db, conn, false) {
            Ok(()) => ack(conn),
            Err(e) => Response::Err(e),
        }),
        Request::CloseStmt { id } => Outcome::One(match conn.stmts.remove(&id) {
            Some(_) => ack(conn),
            None => Response::Err(Error::not_found(format!(
                "prepared statement #{id} on this connection"
            ))),
        }),
    }
}

/// The per-statement limits one request runs under: the server's configured
/// budgets, with the deadline being the *tighter* of the client-requested
/// one and [`ServerConfig::statement_deadline`] — a client can narrow its
/// budget but never widen the server's.
fn governance_for(shared: &Shared, deadline_ms: Option<u32>) -> Governance {
    let cfg = &shared.config;
    let requested = deadline_ms.map(|ms| Duration::from_millis(u64::from(ms)));
    let deadline = match (requested, cfg.statement_deadline) {
        (Some(client), Some(server)) => Some(client.min(server)),
        (client, server) => client.or(server),
    };
    Governance {
        deadline,
        max_rows: cfg.max_result_rows,
        max_bytes: cfg.max_result_bytes,
        lock_wait: Some(cfg.lock_wait_timeout),
        ..Governance::default()
    }
}

/// An Ack reporting the connection's post-request transaction state — the
/// server is authoritative, so clients track `in_txn` without parsing SQL.
fn ack(conn: &ConnState) -> Response {
    Response::Ack {
        txn_open: conn.txn.is_some(),
    }
}

fn resolve_stmt(conn: &ConnState, db: &Database, stmt: StmtRef) -> Result<Prepared> {
    match stmt {
        StmtRef::Sql(sql) => db.prepare(&sql),
        StmtRef::Id(id) => conn.stmts.get(&id).cloned().ok_or_else(|| {
            Error::not_found(format!("prepared statement #{id} on this connection"))
        }),
    }
}

fn txn_begin(db: &Database, conn: &mut ConnState) -> Result<()> {
    if conn.txn.is_some() {
        return Err(Error::type_err("transaction already open on this connection"));
    }
    conn.txn = Some(db.begin());
    Ok(())
}

fn txn_finish(db: &Database, conn: &mut ConnState, commit: bool) -> Result<()> {
    let txn = conn
        .txn
        .take()
        .ok_or_else(|| Error::type_err("no open transaction on this connection"))?;
    if commit {
        db.commit(txn)
    } else {
        db.rollback(txn)
    }
}

/// Mirrors [`relstore::Session::execute`]: SQL-level `BEGIN` / `COMMIT` /
/// `ROLLBACK` drive the connection's transaction; everything else runs
/// inside the open transaction if there is one, else in autocommit mode.
fn execute_stmt(
    db: &Database,
    conn: &mut ConnState,
    stmt: StmtRef,
    params: Vec<Value>,
    gov: &Governance,
) -> Result<ExecResult> {
    let prepared = resolve_stmt(conn, db, stmt)?;
    match prepared.statement() {
        Statement::Begin | Statement::Commit | Statement::Rollback if !params.is_empty() => {
            Err(Error::type_err(format!(
                "transaction-control statements take no parameters, got {}",
                params.len()
            )))
        }
        Statement::Begin => txn_begin(db, conn).map(|()| ExecResult::Ack),
        Statement::Commit => txn_finish(db, conn, true).map(|()| ExecResult::Ack),
        Statement::Rollback => txn_finish(db, conn, false).map(|()| ExecResult::Ack),
        _ => match conn.txn {
            Some(txn) => db.execute_prepared_in_governed(txn, &prepared, &params, gov),
            None => db.execute_prepared_governed(&prepared, &params, gov),
        },
    }
}

/// Writes one request's outcome, paging query results. Returns bytes sent.
fn write_outcome(stream: &mut TcpStream, outcome: Outcome, page_rows: usize) -> Result<u64> {
    match outcome {
        Outcome::One(resp) => write_frame(stream, &resp.encode()),
        Outcome::Rows(q) => write_query(stream, &q, page_rows),
        Outcome::Batch(results) => {
            let mut sent = write_frame(
                stream,
                &Response::BatchHeader {
                    count: results.len() as u32,
                }
                .encode(),
            )?;
            for q in &results {
                sent += write_query(stream, q, page_rows)?;
            }
            Ok(sent)
        }
    }
}

fn write_query(stream: &mut TcpStream, q: &QueryResult, page_rows: usize) -> Result<u64> {
    let header = Response::RowsHeader {
        columns: q.columns.iter().map(|c| c.to_string()).collect(),
    };
    let mut sent = write_frame(stream, &header.encode())?;
    if q.rows.is_empty() {
        return Ok(sent + write_frame(stream, &protocol::encode_row_page(&[], true))?);
    }
    let mut pages = q.rows.chunks(page_rows).peekable();
    while let Some(page) = pages.next() {
        let last = pages.peek().is_none();
        sent += write_frame(stream, &protocol::encode_row_page(page, last))?;
    }
    Ok(sent)
}

// --- polled socket reads -----------------------------------------------------

/// Reads exactly `buf.len()` bytes, looping over the read timeout. Returns
/// `Ok(false)` — without an error — when the connection closed cleanly, the
/// server began shutting down, or the peer sat idle past
/// [`ServerConfig::idle_timeout`], all *before the first byte arrived* (and
/// `allow_idle_exit` is set); once a unit has started arriving it is always
/// read to completion — or fails with [`Error::Net`] if the peer stalls
/// mid-unit longer than [`ServerConfig::read_timeout`] — so neither
/// shutdown nor a vanished client can truncate an in-flight frame or pin a
/// worker thread forever.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    allow_idle_exit: bool,
) -> Result<bool> {
    let mut filled = 0usize;
    let mut last_progress = std::time::Instant::now();
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_idle_exit {
                    return Ok(false);
                }
                return Err(Error::net("connection closed mid-frame"));
            }
            Ok(n) => {
                filled += n;
                last_progress = std::time::Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && allow_idle_exit {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(false);
                    }
                    if last_progress.elapsed() >= shared.config.idle_timeout {
                        return Ok(false); // idle reap: quiet close
                    }
                } else if last_progress.elapsed() >= shared.config.read_timeout {
                    return Err(Error::net(format!(
                        "peer stalled mid-frame for over {:?}",
                        shared.config.read_timeout
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(protocol::io_err(e)),
        }
    }
    Ok(true)
}

/// Reads one frame, honouring shutdown and clean disconnects only at frame
/// boundaries. `Ok(None)` means the connection should close quietly.
fn read_frame_polling(stream: &mut TcpStream, shared: &Shared) -> Result<Option<Vec<u8>>> {
    // Check the flag *before* reading, not only on an idle timeout: a
    // client pipelining requests back-to-back keeps the socket readable, so
    // a timeout-only check would never drain that connection.
    if shared.shutdown.load(Ordering::SeqCst) {
        return Ok(None);
    }
    let mut len = [0u8; 4];
    if !read_full(stream, &mut len, shared, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > crate::codec::MAX_FRAME {
        return Err(Error::net(format!(
            "peer announced a frame of {len} byte(s) (limit {})",
            crate::codec::MAX_FRAME
        )));
    }
    let mut payload = vec![0u8; len];
    read_full(stream, &mut payload, shared, false)?;
    Ok(Some(payload))
}
