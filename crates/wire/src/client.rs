//! The blocking client and connection pool.
//!
//! [`Client`] mirrors the shape of a [`relstore::Session`], so service code
//! written against the typed surface — [`IntoParams`] tuples in,
//! [`FromRow`] structs out, [`Client::with_retries`] around write
//! transactions — is transport-agnostic: swap `db.session()` for
//! `pool.get()?` and the call sites do not change. Statements are SQL text
//! (resolved through the server's statement cache) or [`RemoteStatement`]
//! handles returned by [`Client::prepare`]; handles are scoped to the
//! connection that prepared them.
//!
//! [`ClientPool`] keeps up to `capacity` connections to one server, blocks
//! callers when all are checked out, and discards (rather than reuses) any
//! connection that suffered a transport error or was returned with a
//! transaction still open — the server rolls that transaction back when the
//! socket closes.

use crate::protocol::{
    self, read_frame, write_frame, Request, Response, StmtRef,
};
use relstore::{Error, ExecResult, FromRow, FromValue, IntoParams, QueryResult, Result, Row};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A prepared-statement handle on one connection (see [`Client::prepare`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteStatement {
    id: u32,
    params: u16,
}

impl RemoteStatement {
    /// Number of `?` parameter slots the statement expects.
    pub fn param_count(&self) -> usize {
        self.params as usize
    }
}

impl From<&RemoteStatement> for StmtRef {
    fn from(stmt: &RemoteStatement) -> StmtRef {
        StmtRef::Id(stmt.id)
    }
}

impl From<RemoteStatement> for StmtRef {
    fn from(stmt: RemoteStatement) -> StmtRef {
        StmtRef::Id(stmt.id)
    }
}

impl From<&str> for StmtRef {
    fn from(sql: &str) -> StmtRef {
        StmtRef::Sql(sql.to_string())
    }
}

impl From<String> for StmtRef {
    fn from(sql: String) -> StmtRef {
        StmtRef::Sql(sql)
    }
}

/// A blocking connection to a wire-protocol server.
///
/// One client is one TCP connection with its own prepared-statement handles
/// and at most one open transaction; it is `Send` but not shareable — open
/// one per thread (or take them from a [`ClientPool`]).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Set when the transport failed: the connection's state is unknown and
    /// it must not be reused (a pool discards it).
    broken: bool,
    /// Tracks the connection's SQL-level transaction so the RAII guard and
    /// the pool can tell whether the connection is mid-transaction.
    in_txn: bool,
    /// Deadline attached to every statement request sent on this
    /// connection; the server enforces the tighter of this and its own
    /// configured default.
    deadline: Option<Duration>,
}

impl Client {
    /// Connects and performs the protocol handshake. A server at its
    /// connection limit answers with a **retryable** [`Error::Busy`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let mut stream = TcpStream::connect(addr).map_err(protocol::io_err)?;
        stream.set_nodelay(true).map_err(protocol::io_err)?;
        protocol::write_hello(&mut stream)?;
        protocol::read_handshake_response(&mut stream)?;
        Ok(Client {
            stream,
            broken: false,
            in_txn: false,
            deadline: None,
        })
    }

    /// True when a transport error has made the connection unusable.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// True when a transaction is open on this connection.
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Sets the deadline attached to every subsequent statement request on
    /// this connection (`None` clears it). The server runs the statement
    /// under the *tighter* of this and its configured default and answers
    /// an overrun with a statement-deadline [`Error::Timeout`] — a client
    /// can narrow its budget but never widen the server's.
    pub fn set_statement_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The deadline currently attached to statement requests, if any.
    pub fn statement_deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The wire form of the statement deadline: whole milliseconds,
    /// saturating at `u32::MAX` (~49 days).
    fn deadline_ms(&self) -> Option<u32> {
        self.deadline
            .map(|d| d.as_millis().min(u128::from(u32::MAX)) as u32)
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        write_frame(&mut self.stream, &req.encode())
            .map(|_| ())
            .inspect_err(|_| self.broken = true)
    }

    fn recv(&mut self) -> Result<Response> {
        read_frame(&mut self.stream)
            .and_then(|payload| Response::decode(&payload))
            .inspect_err(|_| self.broken = true)
    }

    fn unexpected(&mut self, what: &str, resp: &Response) -> Error {
        // The stream is desynchronised; nothing more can be trusted on it.
        self.broken = true;
        Error::net(format!("unexpected response to {what}: {resp:?}"))
    }

    /// Reads a streamed query result whose first frame is `first`.
    fn read_query_result(&mut self, first: Response) -> Result<QueryResult> {
        let columns = match first {
            Response::RowsHeader { columns } => columns,
            Response::Err(e) => return Err(e),
            other => return Err(self.unexpected("query", &other)),
        };
        let mut rows: Vec<Row> = Vec::new();
        loop {
            match self.recv()? {
                Response::RowPage {
                    rows: mut page,
                    last,
                } => {
                    rows.append(&mut page);
                    if last {
                        break;
                    }
                }
                other => return Err(self.unexpected("row page", &other)),
            }
        }
        Ok(QueryResult {
            columns: columns.into_iter().map(Arc::from).collect(),
            rows,
        })
    }

    /// Prepares a statement server-side and returns its connection-scoped
    /// handle.
    pub fn prepare(&mut self, sql: &str) -> Result<RemoteStatement> {
        self.send(&Request::Prepare {
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            Response::Prepared { id, params } => Ok(RemoteStatement { id, params }),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected("Prepare", &other)),
        }
    }

    /// Releases a prepared-statement handle server-side.
    pub fn close_stmt(&mut self, stmt: RemoteStatement) -> Result<()> {
        self.send(&Request::CloseStmt { id: stmt.id })?;
        match self.recv()? {
            Response::Ack { txn_open } => {
                self.in_txn = txn_open;
                Ok(())
            }
            Response::Err(e) => Err(e),
            other => Err(self.unexpected("CloseStmt", &other)),
        }
    }

    /// Executes one statement — SQL text or a prepared handle — binding
    /// `params` positionally, exactly like [`relstore::Session::execute`].
    /// SQL-level `BEGIN` / `COMMIT` / `ROLLBACK` drive the connection's
    /// transaction.
    pub fn execute<S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<ExecResult> {
        self.send(&Request::Execute {
            stmt: stmt.into(),
            params: params.into_params(),
            deadline_ms: self.deadline_ms(),
        })?;
        match self.recv()? {
            Response::Affected(n) => Ok(ExecResult::Affected(n as usize)),
            // The Ack carries the connection's post-statement transaction
            // state, so SQL-level BEGIN/COMMIT/ROLLBACK — in any spelling,
            // or through a prepared handle — keeps `in_txn` accurate.
            Response::Ack { txn_open } => {
                self.in_txn = txn_open;
                Ok(ExecResult::Ack)
            }
            Response::Err(e) => Err(e),
            first @ Response::RowsHeader { .. } => {
                Ok(ExecResult::Query(self.read_query_result(first)?))
            }
            other => Err(self.unexpected("Execute", &other)),
        }
    }

    /// Executes a SELECT and returns its rows.
    pub fn query<S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<QueryResult> {
        self.send(&Request::Query {
            stmt: stmt.into(),
            params: params.into_params(),
            deadline_ms: self.deadline_ms(),
        })?;
        let first = self.recv()?;
        self.read_query_result(first)
    }

    /// Executes a SELECT and decodes every row into `T`.
    pub fn query_as<T: FromRow, S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<Vec<T>> {
        self.query(stmt, params)?.decode()
    }

    /// Executes a SELECT and decodes the first row, if any.
    pub fn query_one<T: FromRow, S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<Option<T>> {
        self.query(stmt, params)?.decode_first()
    }

    /// Executes a single-column SELECT and decodes each row's value.
    pub fn query_scalars<T: FromValue, S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<Vec<T>> {
        let result = self.query(stmt, params)?;
        result.views().map(|v| v.get_at(0)).collect()
    }

    /// Executes a DML statement once per binding under one server-side
    /// catalog guard and one WAL append (see
    /// [`relstore::Session::execute_batch`]) — and, over the wire, one
    /// request frame instead of N round trips.
    pub fn execute_batch<S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        bindings: impl IntoIterator<Item = P>,
    ) -> Result<usize> {
        self.send(&Request::ExecuteBatch {
            stmt: stmt.into(),
            bindings: bindings.into_iter().map(IntoParams::into_params).collect(),
            deadline_ms: self.deadline_ms(),
        })?;
        match self.recv()? {
            Response::Affected(n) => Ok(n as usize),
            Response::Err(e) => Err(e),
            other => Err(self.unexpected("ExecuteBatch", &other)),
        }
    }

    /// Executes a SELECT once per binding under one server-side shared
    /// guard; results come back in binding order. One round trip for the
    /// whole pipeline.
    pub fn query_batch<S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        bindings: impl IntoIterator<Item = P>,
    ) -> Result<Vec<QueryResult>> {
        self.send(&Request::QueryBatch {
            stmt: stmt.into(),
            bindings: bindings.into_iter().map(IntoParams::into_params).collect(),
            deadline_ms: self.deadline_ms(),
        })?;
        let count = match self.recv()? {
            Response::BatchHeader { count } => count as usize,
            Response::Err(e) => return Err(e),
            other => return Err(self.unexpected("QueryBatch", &other)),
        };
        let mut results = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let first = self.recv()?;
            results.push(self.read_query_result(first)?);
        }
        Ok(results)
    }

    fn txn_request(&mut self, req: Request) -> Result<()> {
        self.send(&req)?;
        match self.recv()? {
            Response::Ack { txn_open } => {
                self.in_txn = txn_open;
                Ok(())
            }
            Response::Err(e) => Err(e),
            other => Err(self.unexpected("transaction control", &other)),
        }
    }

    /// Opens the connection's transaction (at most one may be open).
    pub fn begin(&mut self) -> Result<()> {
        self.txn_request(Request::Begin)
    }

    /// Commits the connection's transaction.
    pub fn commit(&mut self) -> Result<()> {
        self.txn_request(Request::Commit)
    }

    /// Rolls back the connection's transaction.
    pub fn rollback(&mut self) -> Result<()> {
        self.txn_request(Request::Rollback)
    }

    /// Begins a transaction and returns its RAII guard: `commit()` consumes
    /// it, dropping it rolls back (and if the connection dies instead, the
    /// server rolls back when the socket closes).
    pub fn transaction(&mut self) -> Result<RemoteTransaction<'_>> {
        self.begin()?;
        Ok(RemoteTransaction {
            client: self,
            open: true,
        })
    }

    /// Runs `f` up to `attempts` times via [`relstore::retry_with_backoff`]
    /// — the same policy and contract as
    /// [`relstore::Session::with_retries`]. The error frame carries the
    /// server-side [`Error`] variant and class, so a remote write-write
    /// [`Error::LockConflict`] retries exactly like an embedded one, while
    /// transport failures ([`Error::Net`], never retryable) stop the loop.
    pub fn with_retries<T>(
        &mut self,
        attempts: usize,
        mut f: impl FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        relstore::retry_with_backoff(attempts, || f(self))
    }

    /// [`Client::with_retries`] under an overall wall-clock budget: the
    /// whole loop — every attempt *and* every backoff sleep — stays within
    /// `overall` (see [`relstore::retry_with_backoff_deadline`]). The first
    /// attempt always runs.
    pub fn with_retries_deadline<T>(
        &mut self,
        attempts: usize,
        overall: Duration,
        mut f: impl FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        relstore::retry_with_backoff_deadline(attempts, Some(overall), || f(self))
    }

    /// Best-effort rollback of a transaction abandoned by a drop path,
    /// bounded by short socket timeouts so a stalled server cannot pin the
    /// drop. A transport failure just marks the connection broken — the
    /// server rolls the transaction back when it observes the close.
    fn rollback_abandoned(&mut self) {
        if !self.in_txn || self.broken {
            return;
        }
        let bound = Some(Duration::from_millis(250));
        let _ = self.stream.set_write_timeout(bound);
        let _ = self.stream.set_read_timeout(bound);
        let _ = self.rollback();
        let _ = self.stream.set_write_timeout(None);
        let _ = self.stream.set_read_timeout(None);
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Dropping mid-transaction sends a best-effort Rollback so the
        // server releases the locks *now*, not when it next polls the
        // socket and observes the close.
        self.rollback_abandoned();
    }
}

/// An RAII transaction guard over a [`Client`], mirroring
/// [`relstore::Transaction`]: statements run inside the transaction,
/// `commit()` consumes the guard, and dropping it rolls back.
#[derive(Debug)]
pub struct RemoteTransaction<'a> {
    client: &'a mut Client,
    open: bool,
}

impl<'a> RemoteTransaction<'a> {
    /// Executes one statement inside the transaction.
    pub fn execute<S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<ExecResult> {
        self.client.execute(stmt, params)
    }

    /// Executes a SELECT inside the transaction.
    pub fn query<S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<QueryResult> {
        self.client.query(stmt, params)
    }

    /// Executes a SELECT and decodes every row into `T`.
    pub fn query_as<T: FromRow, S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<Vec<T>> {
        self.client.query_as(stmt, params)
    }

    /// Executes a SELECT and decodes the first row, if any.
    pub fn query_one<T: FromRow, S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<Option<T>> {
        self.client.query_one(stmt, params)
    }

    /// Executes a single-column SELECT and decodes each row's value.
    pub fn query_scalars<T: FromValue, S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        params: P,
    ) -> Result<Vec<T>> {
        self.client.query_scalars(stmt, params)
    }

    /// Executes a DML batch inside the transaction.
    pub fn execute_batch<S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        bindings: impl IntoIterator<Item = P>,
    ) -> Result<usize> {
        self.client.execute_batch(stmt, bindings)
    }

    /// Executes a SELECT batch inside the transaction.
    pub fn query_batch<S: Into<StmtRef>, P: IntoParams>(
        &mut self,
        stmt: S,
        bindings: impl IntoIterator<Item = P>,
    ) -> Result<Vec<QueryResult>> {
        self.client.query_batch(stmt, bindings)
    }

    /// Commits the transaction, consuming the guard.
    pub fn commit(mut self) -> Result<()> {
        self.open = false;
        self.client.commit()
    }

    /// Rolls the transaction back explicitly, surfacing the result.
    pub fn rollback(mut self) -> Result<()> {
        self.open = false;
        self.client.rollback()
    }
}

impl<'a> Drop for RemoteTransaction<'a> {
    fn drop(&mut self) {
        if self.open {
            let _ = self.client.rollback();
        }
    }
}

// --- connection pool ---------------------------------------------------------

struct PoolState {
    idle: Vec<Client>,
    /// Connections checked out or idle (i.e. counted against capacity).
    open: usize,
}

struct PoolInner {
    addr: String,
    capacity: usize,
    state: Mutex<PoolState>,
    available: Condvar,
}

/// A blocking pool of up to `capacity` [`Client`] connections to one server.
///
/// [`ClientPool::get`] hands out an idle connection, dials a new one while
/// under capacity, and otherwise blocks until a connection is returned.
/// Returned connections are reused unless they broke (transport error) or
/// still hold an open transaction — those are closed instead, which makes
/// the server roll the transaction back.
#[derive(Clone)]
pub struct ClientPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for ClientPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock().unwrap();
        f.debug_struct("ClientPool")
            .field("addr", &self.inner.addr)
            .field("capacity", &self.inner.capacity)
            .field("open", &state.open)
            .field("idle", &state.idle.len())
            .finish()
    }
}

impl ClientPool {
    /// Creates a pool dialing `addr`, holding at most `capacity`
    /// connections. Connections are created lazily on first use.
    pub fn new(addr: impl Into<String>, capacity: usize) -> ClientPool {
        ClientPool {
            inner: Arc::new(PoolInner {
                addr: addr.into(),
                capacity: capacity.max(1),
                state: Mutex::new(PoolState {
                    idle: Vec::new(),
                    open: 0,
                }),
                available: Condvar::new(),
            }),
        }
    }

    /// Connections currently counted against capacity (checked out + idle).
    pub fn open_connections(&self) -> usize {
        self.inner.state.lock().unwrap().open
    }

    /// Checks a connection out of the pool, dialing a new one while under
    /// capacity and blocking while the pool is exhausted.
    pub fn get(&self) -> Result<PooledClient> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(client) = state.idle.pop() {
                return Ok(PooledClient {
                    client: Some(client),
                    pool: Arc::clone(&self.inner),
                });
            }
            if state.open < self.inner.capacity {
                state.open += 1;
                drop(state);
                return match Client::connect(&self.inner.addr) {
                    Ok(client) => Ok(PooledClient {
                        client: Some(client),
                        pool: Arc::clone(&self.inner),
                    }),
                    Err(e) => {
                        self.inner.state.lock().unwrap().open -= 1;
                        self.inner.available.notify_one();
                        Err(e)
                    }
                };
            }
            state = self.inner.available.wait(state).unwrap();
        }
    }

    /// Runs `f` with a pooled connection via
    /// [`relstore::retry_with_backoff`], taking a **fresh** connection per
    /// attempt so a retry is never pinned to the connection that just
    /// failed. The pooled analogue of [`relstore::Session::with_retries`];
    /// a server's busy handshake ([`Error::Busy`]) is retryable, so a full
    /// server backs callers off rather than failing them.
    ///
    /// Transport failures ([`Error::Net`]) are retried here too — the
    /// broken connection is discarded on return, so the next attempt dials
    /// or reuses a healthy one. That covers a server-side idle reap or
    /// stall timeout transparently, but it also means `f` may run again
    /// after a request whose fate is unknown (the socket died after the
    /// request was sent): keep `f` idempotent, or use a bare [`Client`]
    /// where a transport error must surface as-is.
    pub fn with_retries<T>(
        &self,
        attempts: usize,
        f: impl FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        self.with_retries_inner(attempts, None, f)
    }

    /// [`ClientPool::with_retries`] under an overall wall-clock budget: the
    /// whole loop — every attempt *and* every backoff sleep — stays within
    /// `overall` (see [`relstore::retry_with_backoff_deadline`]). The first
    /// attempt always runs.
    pub fn with_retries_deadline<T>(
        &self,
        attempts: usize,
        overall: Duration,
        f: impl FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        self.with_retries_inner(attempts, Some(overall), f)
    }

    fn with_retries_inner<T>(
        &self,
        attempts: usize,
        overall: Option<Duration>,
        mut f: impl FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        relstore::retry_with_backoff_deadline(attempts, overall, || {
            self.get()
                .and_then(|mut conn| f(&mut conn))
                .map_err(|e| match e {
                    // Error::Net is not retryable in general (a bare client
                    // cannot recover its connection), but the pool can:
                    // reclassify so the backoff loop takes a fresh one.
                    Error::Net(msg) => {
                        Error::busy(format!("transport failure on pooled connection: {msg}"))
                    }
                    other => other,
                })
        })
    }
}

/// A connection checked out of a [`ClientPool`]; derefs to [`Client`] and
/// returns the connection to the pool on drop (or discards it when broken
/// or left mid-transaction).
pub struct PooledClient {
    client: Option<Client>,
    pool: Arc<PoolInner>,
}

impl std::ops::Deref for PooledClient {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("client present until drop")
    }
}

impl std::ops::DerefMut for PooledClient {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("client present until drop")
    }
}

impl Drop for PooledClient {
    fn drop(&mut self) {
        let mut client = self.client.take().expect("client present until drop");
        // A connection returned mid-transaction is still discarded (its
        // state is suspect), but a best-effort Rollback first releases the
        // transaction's locks immediately instead of when the server
        // notices the socket close.
        let abandoned = client.in_txn;
        client.rollback_abandoned();
        let mut state = self.pool.state.lock().unwrap();
        if client.broken || abandoned {
            // Closing the socket makes the server roll back any open
            // transaction; the pool slot frees for a fresh dial.
            state.open -= 1;
        } else {
            state.idle.push(client);
        }
        drop(state);
        self.pool.available.notify_one();
    }
}
