//! Property tests of the wire codec: every [`Value`] shape round-trips
//! bit-exactly, and hostile bytes — truncations, oversized length prefixes,
//! flipped tags — are rejected with a clean [`Error::Net`], never a panic.

use proptest::prelude::*;
use relstore::{Error, Row, Value};
use wire::codec::{put_value, put_values, Reader, MAX_FRAME};
use wire::protocol::{encode_row_page, read_frame, write_frame, Request, Response, StmtRef};

/// Every value shape the engine stores, biased toward the encodings most
/// likely to break a codec: NULL, extreme and negative integers, doubles by
/// raw bit pattern (non-finite values and NaN payloads included), empty and
/// NUL-embedding strings, and negative timestamps.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (i64::MIN..=i64::MAX).prop_map(Value::Int),
        Just(Value::Int(i64::MIN)),
        (i64::MIN..=i64::MAX).prop_map(|bits| Value::Double(f64::from_bits(bits as u64))),
        Just(Value::Double(f64::NAN)),
        Just(Value::Double(f64::NEG_INFINITY)),
        (-1e300..1e300).prop_map(Value::Double),
        "\\PC{0,40}".prop_map(|s| Value::Text(s.into())),
        Just(Value::Text("".into())),
        Just(Value::Text("embedded\0nul\0bytes".into())),
        (0..2u8).prop_map(|b| Value::Bool(b == 1)),
        (i64::MIN..=i64::MAX).prop_map(Value::Timestamp),
    ]
}

/// Equality that distinguishes double bit patterns (the engine's `PartialEq`
/// treats all NaNs as equal; the codec must preserve the exact bits).
fn bit_exact(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn codec_values_round_trip(values in prop::collection::vec(value_strategy(), 0..12)) {
        let mut buf = Vec::new();
        put_values(&mut buf, &values);
        let mut reader = Reader::new(&buf);
        let decoded = reader.values().unwrap();
        reader.expect_end().unwrap();
        prop_assert_eq!(decoded.len(), values.len());
        for (d, v) in decoded.iter().zip(&values) {
            prop_assert!(bit_exact(d, v), "decoded {:?} != encoded {:?}", d, v);
        }
    }

    #[test]
    fn codec_truncated_values_error_cleanly(value in value_strategy(), cut_seed in 0..10_000usize) {
        let mut buf = Vec::new();
        put_value(&mut buf, &value);
        // Every strict prefix must fail with Error::Net — and never panic.
        let cut = cut_seed % buf.len();
        let err = Reader::new(&buf[..cut]).value().unwrap_err();
        prop_assert!(matches!(err, Error::Net(_)), "prefix {} gave {:?}", cut, err);
    }

    #[test]
    fn codec_request_frames_round_trip(
        params in prop::collection::vec(value_strategy(), 0..6),
        bindings in prop::collection::vec(prop::collection::vec(value_strategy(), 0..4), 0..5),
        sql in "\\PC{0,40}",
        id in 0..u32::MAX,
        deadline_seed in 0..u32::MAX,
    ) {
        let deadline_ms = (deadline_seed % 3 != 0).then_some(deadline_seed);
        let requests = [
            Request::Prepare { sql: sql.clone() },
            Request::Execute { stmt: StmtRef::Sql(sql.clone()), params: params.clone(), deadline_ms },
            Request::Query { stmt: StmtRef::Id(id), params: params.clone(), deadline_ms },
            Request::ExecuteBatch { stmt: StmtRef::Id(id), bindings: bindings.clone(), deadline_ms },
            Request::QueryBatch { stmt: StmtRef::Sql(sql), bindings, deadline_ms },
        ];
        for req in requests {
            let payload = req.encode();
            let decoded = Request::decode(&payload).unwrap();
            // Structural equality is too strict for NaN payloads, so
            // round-trip once more and compare the bytes instead.
            prop_assert_eq!(decoded.encode(), payload.clone());
            // Truncations fail cleanly at an arbitrary cut point.
            let cut = (id as usize) % payload.len();
            prop_assert!(Request::decode(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn codec_row_pages_round_trip(
        rows in prop::collection::vec(prop::collection::vec(value_strategy(), 0..5), 0..6),
        last in (0..2u8).prop_map(|b| b == 1),
    ) {
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        let payload = encode_row_page(&rows, last);
        match Response::decode(&payload).unwrap() {
            Response::RowPage { rows: decoded, last: decoded_last } => {
                prop_assert_eq!(decoded_last, last);
                prop_assert_eq!(decoded.len(), rows.len());
                for (d, r) in decoded.iter().zip(&rows) {
                    prop_assert_eq!(d.arity(), r.arity());
                    for (dv, rv) in d.values.iter().zip(&r.values) {
                        prop_assert!(bit_exact(dv, rv));
                    }
                }
            }
            other => prop_assert!(false, "expected RowPage, got {:?}", other),
        }
    }

    #[test]
    fn codec_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(0..=u8::MAX, 0..64)) {
        // Whatever a hostile peer sends, decoding returns — Ok for the rare
        // valid encoding, Err otherwise — without panicking or allocating
        // unboundedly.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let mut reader = Reader::new(&bytes);
        let _ = reader.values();
        let _ = read_frame(&mut bytes.as_slice());
    }
}

#[test]
fn codec_large_text_blobs_round_trip() {
    // A megabyte-scale text value (the closest thing to a blob the engine
    // stores) survives the trip and stays within one frame.
    let blob: String = "x☃\0".repeat(400_000);
    let value = Value::Text(blob.into());
    let mut buf = Vec::new();
    put_value(&mut buf, &value);
    assert!(buf.len() < MAX_FRAME);
    assert_eq!(Reader::new(&buf).value().unwrap(), value);

    // Framing refuses anything beyond MAX_FRAME on the way out...
    let oversized = vec![0u8; MAX_FRAME + 1];
    assert!(matches!(
        write_frame(&mut Vec::new(), &oversized),
        Err(Error::Net(_))
    ));
    // ...and refuses an oversized announcement on the way in, before
    // allocating anything.
    let hostile = ((MAX_FRAME + 1) as u32).to_le_bytes();
    assert!(matches!(
        read_frame(&mut hostile.as_slice()),
        Err(Error::Net(_))
    ));
}
