//! Large-cluster behaviour (Figure 10 and Section 5.3.2), scaled down so the
//! example finishes quickly: CondorJ2 keeps ample headroom managing thousands
//! of virtual machines, while a single Condor schedd crashes once jobs start
//! turning over at scale.
//!
//! ```text
//! cargo run --release --example large_cluster
//! ```

use workloads::{condor_large_cluster, large_cluster_experiment, Scale};

fn main() {
    let condorj2 = large_cluster_experiment(Scale::Quick, 11);
    println!("{}", condorj2.render());
    println!(
        "CAS busy%% during ramp-up (first 30 min): {:.1}, during steady state: {:.1}",
        condorj2.mean_busy(0, 30),
        condorj2.mean_busy(30, 90)
    );

    let condor = condor_large_cluster(Scale::Quick, 11);
    println!("\n{}", condor.render());
}
