//! Regenerates the paper's Tables 1 and 2: the data flow of one job through
//! Condor (15 steps, 7 entities, 10 channels) and through CondorJ2 (15 steps,
//! 5 entities, 4 channels), captured from the running implementations.
//!
//! ```text
//! cargo run --release --example dataflow_trace
//! ```

use workloads::{condor_dataflow_trace, condorj2_dataflow_trace};

fn main() {
    let condor = condor_dataflow_trace(1);
    let condorj2 = condorj2_dataflow_trace(1);
    println!("{}", condor.to_table("Table 1: one job through Condor"));
    println!("{}", condorj2.to_table("Table 2: one job through CondorJ2"));
    println!(
        "Condor:   {} entities, {} communication channels",
        condor.entities().len(),
        condor.channels().len()
    );
    println!(
        "CondorJ2: {} entities, {} communication channels",
        condorj2.entities().len(),
        condorj2.channels().len()
    );
}
