//! "Cluster management as data management": answer operational questions
//! with SQL — against an embedded simulation, or against a **remote**
//! relstore server over the wire protocol.
//!
//! Embedded mode (default): run a pool for a while, run the queries a
//! Condor administrator would need custom tools (or log archaeology) for,
//! then drop into a console reading SQL from stdin:
//!
//! ```text
//! cargo run --release --example sql_console
//! ```
//!
//! Remote mode: connect to a running `wire` server and read SQL statements
//! from stdin, one per line (Ctrl-D to quit):
//!
//! ```text
//! cargo run --release --example sql_console -- --connect 127.0.0.1:5433
//! echo "SELECT COUNT(*) FROM jobs" | cargo run --example sql_console -- --connect HOST:PORT
//! ```
//!
//! Both modes understand a few meta-commands on top of plain SQL, backed
//! entirely by the engine's virtual system tables (no special protocol):
//!
//! - `\stats` — engine counters, latency histograms, and the hottest
//!   statements (`rel_stats`, `rel_histograms`, `rel_statements`)
//! - `\slow` — the slow-query ring with per-query wait breakdowns
//!   (`rel_slow_queries`; arm it with `ServerConfig::slow_query_threshold`
//!   or `Database::set_slow_query_threshold`)
//! - `\analyze [table]` — refresh planner statistics (`ANALYZE`), then show
//!   the collected per-column stats from `rel_table_stats`
//!
//! `EXPLAIN <select>` and `EXPLAIN ANALYZE <select>` need no meta-command:
//! they are ordinary SQL, so they work typed at either console — embedded
//! or over the wire — and render as a text table like any other result.

use cluster_sim::{ClusterSpec, JobSpec, SimDuration, SimTime};
use condorj2::{CondorJ2Config, CondorJ2Simulation};
use relstore::ExecResult;
use std::io::BufRead;
use std::time::Duration;

/// Expands a `\meta` command into the SQL statements that implement it.
/// Returns `None` for anything that is not a meta-command.
fn meta_sql(line: &str) -> Option<Vec<String>> {
    if let Some(rest) = line.strip_prefix("\\analyze") {
        if !rest.is_empty() && !rest.starts_with(char::is_whitespace) {
            return None; // e.g. `\analyzer`: not our command
        }
        let target = rest.trim();
        return Some(if target.is_empty() {
            vec![
                "ANALYZE".to_string(),
                "SELECT table_name, column_name, row_count, distinct_count, null_count, \
                 stale FROM rel_table_stats ORDER BY table_name, column_name"
                    .to_string(),
            ]
        } else {
            vec![
                format!("ANALYZE {target}"),
                format!(
                    "SELECT column_name, row_count, distinct_count, null_count, \
                     min_value, max_value FROM rel_table_stats \
                     WHERE table_name = '{target}' ORDER BY column_name"
                ),
            ]
        });
    }
    let fixed: &[&str] = match line {
        "\\stats" => &[
            "SELECT name, kind, value FROM rel_stats WHERE value > 0 ORDER BY name",
            "SELECT name, count, p50_us, p95_us, p99_us, max_us FROM rel_histograms \
             WHERE count > 0 ORDER BY name",
            "SELECT kind, calls, total_rows, mean_us, max_us, sql FROM rel_statements \
             ORDER BY total_us DESC LIMIT 10",
        ],
        "\\slow" => &[
            "SELECT seq, kind, duration_us, rows, lock_wait_us, fsync_us, sql \
             FROM rel_slow_queries ORDER BY seq",
        ],
        _ => return None,
    };
    Some(fixed.iter().map(|s| s.to_string()).collect())
}

const META_HELP: &str = "meta-commands: \\stats (counters, histograms, hot statements), \
     \\slow (slow-query ring), \\analyze [table] (refresh planner statistics); \
     EXPLAIN [ANALYZE] <select> is plain SQL";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--connect") {
        match args.get(i + 1) {
            Some(addr) => remote_console(addr),
            None => {
                eprintln!("usage: sql_console [--connect host:port]");
                std::process::exit(2);
            }
        }
        return;
    }
    embedded_demo();
}

/// Drives a remote server: each stdin line is one SQL statement (or a
/// meta-command), results render as text tables. Transaction control
/// (`BEGIN` / `COMMIT` / `ROLLBACK`) drives the connection's server-side
/// transaction — and if the console dies mid-transaction, the server rolls
/// it back on disconnect.
fn remote_console(addr: &str) {
    let mut client = match wire::Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("sql_console: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("connected to {addr}; one SQL statement per line, Ctrl-D to quit");
    eprintln!("{META_HELP}");
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let sql = line.trim();
        if sql.is_empty() || sql.starts_with("--") {
            continue;
        }
        let statements: Vec<String> = match meta_sql(sql) {
            Some(statements) => statements,
            None if sql.starts_with('\\') => {
                println!("unknown meta-command {sql}; {META_HELP}\n");
                continue;
            }
            None => vec![sql.to_string()],
        };
        // Meta-commands expand to plain SQL (`\analyze` includes a write
        // statement), so everything funnels through the same execute path.
        for sql in statements {
            match client.execute(&*sql, ()) {
                Ok(ExecResult::Query(result)) => println!("{}", result.to_text_table()),
                Ok(ExecResult::Affected(n)) => println!("{n} row(s) affected\n"),
                Ok(ExecResult::Ack) => println!("ok\n"),
                Err(e) => {
                    println!("error: {e}\n");
                    if client.is_broken() {
                        eprintln!("sql_console: connection lost");
                        std::process::exit(1);
                    }
                }
            }
        }
    }
}

fn embedded_demo() {
    let spec = ClusterSpec::paper_testbed(10, 4);
    let mut pool = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, 3);
    // Arm the slow-query ring before the workload so `\slow` has material:
    // at 100 µs the bulk heartbeat/match scans of the simulation qualify
    // while point lookups stay below the bar.
    pool.cas()
        .database()
        .set_slow_query_threshold(Some(Duration::from_micros(100)));
    for owner in ["astro", "bio", "chem"] {
        pool.submit(JobSpec::fixed_batch(30, SimDuration::from_secs(45), owner));
    }
    pool.run_until(SimTime::from_mins(8));

    // Record some provenance for the first few completed jobs (the paper's
    // future-work data-management services).
    for job in 1..=3 {
        pool.cas_mut()
            .record_provenance(job, "simulate-v2", &format!("input-{job}.dat"), &format!("out-{job}.dat"))
            .unwrap();
    }

    let db = std::sync::Arc::clone(pool.cas().database());
    let queries = [
        "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state ORDER BY state",
        "SELECT owner, COUNT(*) AS finished, AVG(runtime_ms) AS avg_ms FROM job_history GROUP BY owner ORDER BY owner",
        "SELECT machine_id, state, last_heartbeat FROM machines ORDER BY machine_id LIMIT 5",
        "SELECT COUNT(*) AS running_now FROM runs",
        "SELECT output_dataset, executable, input_dataset FROM provenance ORDER BY record_id",
        "SELECT name, value FROM config ORDER BY name",
    ];
    for sql in queries {
        println!("condorj2> {sql}");
        match db.query(sql) {
            Ok(result) => println!("{}", result.to_text_table()),
            Err(e) => println!("error: {e}\n"),
        }
    }

    // The engine monitored itself while the simulation ran: show the same
    // meta-commands the remote console offers, over the same system tables.
    for meta in ["\\stats", "\\slow"] {
        println!("condorj2> {meta}");
        for sql in meta_sql(meta).unwrap() {
            match db.query(&sql) {
                Ok(result) => println!("{}", result.to_text_table()),
                Err(e) => println!("error: {e}\n"),
            }
        }
    }

    // The planner is part of the operational surface too: collect
    // statistics, then show what the cost-based planner does with the
    // administrator's own join query.
    println!("condorj2> \\analyze job_history");
    for sql in meta_sql("\\analyze job_history").unwrap() {
        match db.execute(&sql) {
            Ok(ExecResult::Query(result)) => println!("{}", result.to_text_table()),
            Ok(ExecResult::Affected(n)) => println!("{n} table(s) analyzed\n"),
            Ok(ExecResult::Ack) => println!("ok\n"),
            Err(e) => println!("error: {e}\n"),
        }
    }
    let explain = "EXPLAIN SELECT users.name, COUNT(*) AS finished \
                   FROM job_history JOIN users ON job_history.owner = users.name \
                   GROUP BY users.name ORDER BY users.name";
    println!("condorj2> {explain}");
    match db.query(explain) {
        Ok(result) => println!("{}", result.to_text_table()),
        Err(e) => println!("error: {e}\n"),
    }

    // Then hand the console over: SQL or meta-commands from stdin (EOF to
    // quit), against the live post-simulation database.
    eprintln!("one SQL statement per line, Ctrl-D to quit; {META_HELP}");
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let sql = line.trim();
        if sql.is_empty() || sql.starts_with("--") {
            continue;
        }
        let statements: Vec<String> = match meta_sql(sql) {
            Some(statements) => statements,
            None if sql.starts_with('\\') => {
                println!("unknown meta-command {sql}; {META_HELP}\n");
                continue;
            }
            None => vec![sql.to_string()],
        };
        for sql in statements {
            match db.execute(&sql) {
                Ok(ExecResult::Query(result)) => println!("{}", result.to_text_table()),
                Ok(ExecResult::Affected(n)) => println!("{n} row(s) affected\n"),
                Ok(ExecResult::Ack) => println!("ok\n"),
                Err(e) => println!("error: {e}\n"),
            }
        }
    }
}
