//! "Cluster management as data management": run a pool for a while, then
//! answer operational questions with SQL against the live database — the
//! queries a Condor administrator would need custom tools (or log archaeology)
//! to answer.
//!
//! ```text
//! cargo run --release --example sql_console
//! ```

use cluster_sim::{ClusterSpec, JobSpec, SimDuration, SimTime};
use condorj2::{CondorJ2Config, CondorJ2Simulation};

fn main() {
    let spec = ClusterSpec::paper_testbed(10, 4);
    let mut pool = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, 3);
    for owner in ["astro", "bio", "chem"] {
        pool.submit(JobSpec::fixed_batch(30, SimDuration::from_secs(45), owner));
    }
    pool.run_until(SimTime::from_mins(8));

    // Record some provenance for the first few completed jobs (the paper's
    // future-work data-management services).
    for job in 1..=3 {
        pool.cas_mut()
            .record_provenance(job, "simulate-v2", &format!("input-{job}.dat"), &format!("out-{job}.dat"))
            .unwrap();
    }

    let db = pool.cas().database();
    let queries = [
        "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state ORDER BY state",
        "SELECT owner, COUNT(*) AS finished, AVG(runtime_ms) AS avg_ms FROM job_history GROUP BY owner ORDER BY owner",
        "SELECT machine_id, state, last_heartbeat FROM machines ORDER BY machine_id LIMIT 5",
        "SELECT COUNT(*) AS running_now FROM runs",
        "SELECT output_dataset, executable, input_dataset FROM provenance ORDER BY record_id",
        "SELECT name, value FROM config ORDER BY name",
    ];
    for sql in queries {
        println!("condorj2> {sql}");
        match db.query(sql) {
            Ok(result) => println!("{}", result.to_text_table()),
            Err(e) => println!("error: {e}\n"),
        }
    }
}
