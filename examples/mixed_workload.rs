//! The paper's mixed-workload scenario (Sections 5.1.3, 5.2.3, 5.3.3) run on
//! both systems: CondorJ2 handles the skewed mix with brute force, while
//! Condor needs a per-schedd running-job limit to avoid underutilisation.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use workloads::{condor_mixed_workload, condorj2_mixed_workload, Scale};

fn main() {
    let condorj2 = condorj2_mixed_workload(Scale::Quick, 7);
    let condor_unlimited = condor_mixed_workload(Scale::Quick, false, 7);
    let condor_limited = condor_mixed_workload(Scale::Quick, true, 7);

    println!("{}", condorj2.render());
    println!("{}", condor_unlimited.render());
    println!("{}", condor_limited.render());

    println!("summary (optimal makespan is ~30 minutes):");
    for exp in [&condorj2, &condor_unlimited, &condor_limited] {
        println!(
            "  {:<10} {:<18} {:>6.1} min",
            exp.system,
            if exp.schedd_limited { "(schedd limited)" } else { "(no limit)" },
            exp.makespan_minutes
        );
    }
}
