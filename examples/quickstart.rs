//! Quickstart: bring up a CondorJ2 pool, submit a workload, watch it finish,
//! then query the operational data with plain SQL.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cluster_sim::{ClusterSpec, JobSpec, SimDuration, SimTime};
use condorj2::{CondorJ2Config, CondorJ2Simulation};

fn main() {
    // A small pool: 8 physical machines with 2 virtual machines each.
    let spec = ClusterSpec::uniform_fast(8, 2);
    let mut pool = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, 42);

    // Submit 48 one-minute jobs and 8 five-minute jobs for two users.
    pool.submit(JobSpec::fixed_batch(48, SimDuration::from_secs(60), "alice"));
    pool.submit(JobSpec::fixed_batch(8, SimDuration::from_mins(5), "bob"));

    let end = pool.run_to_completion(SimTime::from_mins(60));
    let report = pool.report();
    println!(
        "completed {}/{} jobs in {:.1} simulated minutes ({} CAS requests, {} matches)",
        report.completed,
        report.submitted,
        end.as_mins_f64(),
        report.requests_handled,
        report.matches_made
    );

    // The whole point of the paper: operational data is just data. Ask SQL.
    let db = pool.cas().database();
    let per_owner = db
        .query("SELECT owner, COUNT(*) AS jobs, SUM(runtime_ms) AS total_ms FROM job_history GROUP BY owner ORDER BY owner")
        .unwrap();
    println!("\nper-owner usage from job_history:\n{}", per_owner.to_text_table());

    let status = pool.cas().pool_status().unwrap();
    println!(
        "pool status: {} machines, {} completed jobs recorded",
        status.total_machines, status.completed_jobs
    );
}
