//! Umbrella crate for the CondorJ2 reproduction workspace.
//!
//! Re-exports the individual crates so examples and integration tests can use
//! a single dependency. See the crate-level documentation of each member:
//! [`relstore`], [`wire`], [`cluster_sim`], [`appserver`], [`condor`],
//! [`condorj2`], [`workloads`].

pub use appserver;
pub use cluster_sim;
pub use condor;
pub use condorj2;
pub use relstore;
pub use wire;
pub use workloads;
