#!/usr/bin/env bash
# Run every bench target and write their medians to a JSON file.
#
# Usage: scripts/bench_json.sh [OUT]
#
# Sweeps every [[bench]] target declared in crates/bench/Cargo.toml (so a
# new bench is picked up without editing this script), pulls the median
# time out of every "time: [lo med hi]" line, and writes OUT (default
# BENCH_10.json in the repo root) with one entry per bench, all times
# normalised to nanoseconds. The file is the durable record of a bench run;
# regenerate it on a quiet machine when the numbers need refreshing.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-$repo_root/BENCH_10.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

cd "$repo_root"
benches="$(awk '/^\[\[bench\]\]/ { want = 1; next }
                want && /^name = / { gsub(/"/, "", $3); print $3; want = 0 }' \
           crates/bench/Cargo.toml)"
for bench in $benches; do
    echo "== cargo bench -p bench --bench $bench ==" >&2
    # Tag every output line with its bench target so the parser can
    # namespace the medians: two targets may legitimately measure the
    # same function name (relstore_ops and obs_overhead both time
    # prepared_point_select), and JSON keys must be unique.
    cargo bench -p bench --bench "$bench" 2>&1 | sed "s|^|$bench\t|" | tee -a "$log" >&2
done

# Criterion prints, for each bench:
#   <name>                 time:   [410.2 ns 440.0 ns 471.3 ns]
# possibly with the name on its own line when it is long. Walk the log,
# remember the last non-time line as the pending name, and emit
# name + median (converted to ns) for every time line.
awk -F'\t' '
    function to_ns(v, unit) {
        if (unit == "ps") return v / 1000.0
        if (unit == "ns") return v
        if (unit == "us" || unit == "\xc2\xb5s") return v * 1000.0
        if (unit == "ms") return v * 1000000.0
        if (unit == "s")  return v * 1000000000.0
        return -1
    }
    NF >= 2 && $2 ~ /time:/ {
        # The bench name is everything before "time:" if present on the
        # same line, else the last line we saw; prefixed with the bench
        # target so medians are namespaced.
        bench = $1
        name = $2
        sub(/[[:space:]]*time:.*/, "", name)
        gsub(/^[[:space:]]+|[[:space:]]+$/, "", name)
        if (name == "") name = pending
        # Extract "[lo u med u hi u]".
        line = $2
        sub(/.*\[/, "", line)
        sub(/\].*/, "", line)
        n = split(line, f, /[[:space:]]+/)
        if (n >= 4 && name != "") {
            ns = to_ns(f[3] + 0, f[4])
            if (ns >= 0) printf "%s/%s\t%.1f\n", bench, name, ns
        }
        next
    }
    NF >= 2 && $2 ~ /^[A-Za-z_][A-Za-z0-9_\/.-]*([[:space:]]|$)/ {
        pending = $2
        sub(/[[:space:]].*/, "", pending)
    }
' "$log" > "$log.medians"

if ! [ -s "$log.medians" ]; then
    echo "error: no criterion time lines found in bench output" >&2
    exit 1
fi

{
    echo '{'
    echo '  "generated_by": "scripts/bench_json.sh",'
    printf '  "benches": [%s],\n' "$(printf '%s\n' $benches | sed 's/.*/"&"/' | paste -sd, -)"
    echo '  "unit": "ns",'
    echo '  "medians": {'
    total=$(wc -l < "$log.medians")
    i=0
    while IFS=$'\t' read -r name median; do
        i=$((i + 1))
        comma=','
        [ "$i" -eq "$total" ] && comma=''
        printf '    "%s": %s%s\n' "$name" "$median" "$comma"
    done < "$log.medians"
    echo '  }'
    echo '}'
} > "$out"
rm -f "$log.medians"

echo "wrote $out" >&2
