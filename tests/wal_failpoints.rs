//! Deterministic fault injection on the durable-log IO path: fsync errors,
//! short writes, torn writes and crash points, each followed by a real
//! recovery of whatever the "disk" holds. The invariant under test is the
//! acknowledgement contract — a commit is acknowledged only if its bytes
//! are durable under the active [`DurabilityPolicy`], and a failed sync
//! poisons the writer so nothing is ever acknowledged after it.

use relstore::io::points;
use relstore::{Database, DurabilityPolicy, Error, FailAction, MemDevice};

fn durable_db() -> Database {
    let db =
        Database::open_with_device(Box::new(MemDevice::new()), DurabilityPolicy::Always).unwrap();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
    db.execute("INSERT INTO jobs VALUES (1, 'idle')").unwrap();
    db
}

/// Reopens a database from whatever `db`'s device would show after a crash.
fn reopen(db: &Database) -> Database {
    let bytes = db.durable_log_bytes().unwrap();
    Database::open_with_device(
        Box::new(MemDevice::with_contents(bytes)),
        DurabilityPolicy::Always,
    )
    .unwrap()
}

#[test]
fn a_failed_fsync_poisons_the_writer_and_no_later_commit_is_acknowledged() {
    let db = durable_db();
    db.failpoints().arm(points::WAL_SYNC, FailAction::Err);

    let err = db.execute("INSERT INTO jobs VALUES (2, 'lost')").unwrap_err();
    assert!(matches!(err, Error::Io(_)), "commit must fail with Io: {err}");
    assert!(!err.is_retryable(), "a durability failure must not invite a retry");

    // The failpoint was one-shot and is gone — but the poison persists:
    // every subsequent commit fails without touching the device.
    let err = db.execute("INSERT INTO jobs VALUES (3, 'also lost')").unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");
    assert!(err.to_string().contains("poisoned"), "{err}");
    let err = db.flush_log().unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");

    // Reads keep working on the in-memory state.
    assert!(db.table_len("jobs").unwrap() >= 1);
    assert!(db.stats().failpoints_hit >= 1);

    // Recovery comes up with exactly the acknowledged prefix, and the
    // reopened database is healthy again.
    let recovered = reopen(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 1);
    recovered.check_consistency().unwrap();
    recovered.execute("INSERT INTO jobs VALUES (9, 'fresh')").unwrap();
    assert_eq!(recovered.table_len("jobs").unwrap(), 2);
}

#[test]
fn a_short_write_poisons_the_commit_and_leaves_no_durable_trace() {
    let db = durable_db();
    // 5 bytes of the Begin record reach the (volatile) buffer, then the
    // write errors; nothing was synced, so recovery sees the prior state.
    db.failpoints().arm(points::WAL_APPEND, FailAction::ShortWrite(5));

    let err = db.execute("INSERT INTO jobs VALUES (2, 'lost')").unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");

    let recovered = reopen(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 1);
    assert_eq!(
        recovered.stats().recovery_truncated_bytes,
        0,
        "unsynced short-write bytes never reach the durable image"
    );
    recovered.check_consistency().unwrap();
}

#[test]
fn a_torn_write_of_k_bytes_is_truncated_exactly_on_recovery() {
    const K: u64 = 10;
    let db = durable_db();
    db.flush_log().unwrap();
    // Power loss mid-append: K bytes of the next record are persisted, then
    // the device dies. The canonical torn tail.
    db.failpoints().arm(points::WAL_APPEND, FailAction::TornWrite(K as usize));

    let err = db.execute("INSERT INTO jobs VALUES (2, 'torn')").unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");

    let recovered = reopen(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 1);
    assert_eq!(
        recovered.stats().recovery_truncated_bytes,
        K,
        "recovery repairs exactly the torn bytes"
    );
    recovered.check_consistency().unwrap();
}

#[test]
fn a_crash_after_write_before_sync_loses_the_unacknowledged_commit() {
    let db = durable_db();
    // The records all reach the volatile buffer, then the machine dies at
    // the durability barrier: the commit was never acknowledged, and
    // recovery must not surface it.
    db.failpoints().arm(points::WAL_SYNC, FailAction::Crash);

    let err = db.execute("INSERT INTO jobs VALUES (2, 'unsynced')").unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");

    let recovered = reopen(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 1);
    assert_eq!(recovered.stats().recovery_truncated_bytes, 0);
    recovered.check_consistency().unwrap();
}

#[test]
fn batch_policy_sync_failure_strikes_the_commit_that_fills_the_window() {
    let db = Database::open_with_device(
        Box::new(MemDevice::new()),
        DurabilityPolicy::Batch(3),
    )
    .unwrap();
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap(); // commit 1
    db.execute("INSERT INTO t VALUES (1)").unwrap(); // commit 2
    db.execute("INSERT INTO t VALUES (2)").unwrap(); // commit 3: window full, syncs
    db.failpoints().arm(points::WAL_SYNC, FailAction::Err);
    db.execute("INSERT INTO t VALUES (3)").unwrap(); // commit 4: no sync due yet
    db.execute("INSERT INTO t VALUES (4)").unwrap(); // commit 5: no sync due yet
    let err = db.execute("INSERT INTO t VALUES (5)").unwrap_err(); // commit 6 syncs → injected failure
    assert!(matches!(err, Error::Io(_)), "{err}");

    // The durable image holds the synced window: rows 1 and 2.
    let recovered = reopen(&db);
    assert_eq!(recovered.table_len("t").unwrap(), 2);
    recovered.check_consistency().unwrap();
}

#[test]
fn checkpoint_only_policy_acknowledges_commits_a_crash_then_loses() {
    let db = Database::open_with_device(
        Box::new(MemDevice::new()),
        DurabilityPolicy::Checkpoint,
    )
    .unwrap();
    // Both statements are acknowledged without any fsync — the documented
    // weak mode. A crash now loses them both.
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let crashed = reopen(&db);
    assert!(crashed.table_names().is_empty(), "nothing was forced to disk");

    // An explicit flush is the policy's durability point.
    db.flush_log().unwrap();
    let recovered = reopen(&db);
    assert_eq!(recovered.table_len("t").unwrap(), 1);
}

#[test]
fn a_failed_rotation_leaves_the_old_log_fully_intact() {
    for action in [FailAction::Err, FailAction::Crash] {
        let db = durable_db();
        db.execute("INSERT INTO jobs VALUES (2, 'kept')").unwrap();
        db.flush_log().unwrap();
        let before = db.durable_log_bytes().unwrap();

        // The checkpoint's segment rotation fails (IO error, or a crash of
        // the whole machine mid-rotation): the swap never happened, so the
        // old log must still be every byte it was.
        db.failpoints().arm(points::WAL_ROTATE, action);
        let err = db.checkpoint().unwrap_err();
        assert!(matches!(err, Error::Io(_)), "{err}");

        assert_eq!(
            db.durable_log_bytes().unwrap(),
            before,
            "a failed rotation must not disturb the old segment"
        );
        let recovered = reopen(&db);
        assert_eq!(recovered.table_len("jobs").unwrap(), 2);
        recovered.check_consistency().unwrap();
    }
}

#[test]
fn a_successful_checkpoint_rotates_the_segment_and_survives_reopen() {
    let db = durable_db();
    db.execute("INSERT INTO jobs VALUES (2, 'kept')").unwrap();
    let before = db.durable_log_bytes().unwrap().len();
    db.checkpoint().unwrap();
    let after = db.durable_log_bytes().unwrap().len();
    assert!(after < before, "rotation compacts the log: {after} >= {before}");
    assert_eq!(db.stats().wal_segments_rotated, 1);

    let recovered = reopen(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 2);
    recovered.check_consistency().unwrap();

    // Commits after the rotation land on the new segment.
    db.execute("INSERT INTO jobs VALUES (3, 'post')").unwrap();
    let recovered = reopen(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 3);
}

#[test]
fn arm_after_skips_early_hits_and_failpoint_hits_are_counted() {
    let db = durable_db();
    // Skip the Begin and Insert appends; strike the Commit append.
    db.failpoints()
        .arm_after(points::WAL_APPEND, 2, FailAction::Err);
    let err = db.execute("INSERT INTO jobs VALUES (2, 'x')").unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");
    assert_eq!(db.failpoints().hits(), 1);
    assert_eq!(db.stats().failpoints_hit, 1);

    // Begin and Insert were appended but the sync never ran (the commit
    // path surfaced the poison first): none of it is durable.
    let recovered = reopen(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 1);
}

// --- the paged storage engine under the same faults ------------------------
//
// Page writes have their own failure surface: a torn page write must heal
// through the doublewrite journal, a crash between the WAL fsync and the
// page flush must recover from the WAL suffix, and a crash mid-checkpoint
// must leave the committed prefix intact. In every case recovery is typed —
// never a panic.

use relstore::{DurabilityPolicy as Policy, MemBlockDevice, PagedConfig};

fn paged_cfg() -> PagedConfig {
    PagedConfig {
        page_size: 512,
        pool_pages: 4,
    }
}

fn paged_db() -> Database {
    let db = Database::open_paged_with_devices(
        Box::new(MemDevice::new()),
        Box::new(MemBlockDevice::new()),
        Box::new(MemDevice::new()),
        Policy::Always,
        paged_cfg(),
    )
    .unwrap();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
    db.execute("INSERT INTO jobs VALUES (1, 'idle')").unwrap();
    db
}

/// Reopens a paged database from the crash view of all three devices.
fn reopen_paged(db: &Database) -> Database {
    Database::open_paged_with_devices(
        Box::new(MemDevice::with_contents(db.durable_log_bytes().unwrap())),
        Box::new(MemBlockDevice::with_contents(db.durable_page_bytes().unwrap())),
        Box::new(MemDevice::with_contents(db.durable_journal_bytes().unwrap())),
        Policy::Always,
        paged_cfg(),
    )
    .unwrap()
}

#[test]
fn a_torn_page_write_heals_through_the_doublewrite_journal() {
    let db = paged_db();
    for i in 2..20 {
        db.execute(&format!("INSERT INTO jobs VALUES ({i}, 'idle')")).unwrap();
    }
    // The checkpoint's page flush tears mid-page: the device dies with a
    // half-written page, but the journal already holds the full batch.
    db.failpoints().arm(points::PAGE_WRITE, FailAction::TornWrite(100));
    let err = db.checkpoint().unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");

    // The engine is poisoned — further commits refuse with a typed error.
    let err = db.execute("INSERT INTO jobs VALUES (90, 'x')").unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");

    // Reopen: the journal replay rewrites the torn page; every committed
    // row is there and the store verifies clean.
    let recovered = reopen_paged(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 19);
    recovered.check_consistency().unwrap();
    recovered.execute("INSERT INTO jobs VALUES (90, 'fresh')").unwrap();
    assert_eq!(recovered.table_len("jobs").unwrap(), 20);
}

#[test]
fn a_crash_between_wal_sync_and_page_flush_recovers_from_the_suffix() {
    let db = paged_db();
    db.checkpoint().unwrap();
    // These commits are WAL-durable but their pages were never flushed:
    // the page file still shows the checkpoint-time state.
    for i in 2..10 {
        db.execute(&format!("INSERT INTO jobs VALUES ({i}, 'recent')")).unwrap();
    }
    db.execute("UPDATE jobs SET state = 'done' WHERE job_id = 1").unwrap();

    let recovered = reopen_paged(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 9);
    let state = recovered
        .query("SELECT state FROM jobs WHERE job_id = 1")
        .unwrap();
    assert_eq!(
        format!("{:?}", state.rows[0].get(0)),
        format!("{:?}", relstore::Value::Text("done".into())),
        "the WAL suffix replays over the stale page image"
    );
    recovered.check_consistency().unwrap();
}

#[test]
fn a_crash_at_the_page_sync_barrier_keeps_the_committed_prefix() {
    let db = paged_db();
    for i in 2..12 {
        db.execute(&format!("INSERT INTO jobs VALUES ({i}, 'idle')")).unwrap();
    }
    db.failpoints().arm(points::PAGE_SYNC, FailAction::Crash);
    let err = db.checkpoint().unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");

    let recovered = reopen_paged(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 11);
    recovered.check_consistency().unwrap();
}

#[test]
fn a_page_write_error_fails_the_checkpoint_and_poisons_the_store() {
    let db = paged_db();
    for i in 2..12 {
        db.execute(&format!("INSERT INTO jobs VALUES ({i}, 'idle')")).unwrap();
    }
    db.failpoints().arm(points::PAGE_WRITE, FailAction::Err);
    let err = db.checkpoint().unwrap_err();
    assert!(matches!(err, Error::Io(_)), "{err}");
    let err = db.checkpoint().unwrap_err();
    assert!(err.to_string().contains("poisoned"), "{err}");

    let recovered = reopen_paged(&db);
    assert_eq!(recovered.table_len("jobs").unwrap(), 11);
    recovered.check_consistency().unwrap();
}

#[test]
fn an_unjournaled_byte_flip_is_typed_corruption_never_a_panic() {
    let db = paged_db();
    for i in 2..20 {
        db.execute(&format!("INSERT INTO jobs VALUES ({i}, 'idle')")).unwrap();
    }
    db.checkpoint().unwrap();

    let mut pages = db.durable_page_bytes().unwrap();
    assert!(pages.len() > 1024, "checkpoint flushed data pages");
    // Flip one byte inside the first data page: the journal knows nothing
    // about it, so reopen must refuse with typed corruption.
    pages[512 + 40] ^= 0xFF;
    let err = Database::open_paged_with_devices(
        Box::new(MemDevice::with_contents(db.durable_log_bytes().unwrap())),
        Box::new(MemBlockDevice::with_contents(pages)),
        Box::new(MemDevice::with_contents(db.durable_journal_bytes().unwrap())),
        Policy::Always,
        paged_cfg(),
    )
    .unwrap_err();
    assert!(matches!(err, Error::Corruption(_)), "{err}");
}
