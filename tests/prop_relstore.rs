//! Property-based tests of the storage engine invariants that the CondorJ2
//! architecture leans on: index/heap consistency under arbitrary operation
//! sequences, WAL recovery equivalence, and rollback isolation.

use proptest::prelude::*;
use relstore::{Database, OpStats, Row, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, state: u8, runtime: i64 },
    UpdateState { id: i64, state: u8 },
    Delete { id: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..200i64, 0..4u8, 0..100_000i64)
            .prop_map(|(id, state, runtime)| Op::Insert { id, state, runtime }),
        (0..200i64, 0..4u8).prop_map(|(id, state)| Op::UpdateState { id, state }),
        (0..200i64).prop_map(|id| Op::Delete { id }),
    ]
}

fn state_name(state: u8) -> &'static str {
    match state {
        0 => "idle",
        1 => "matched",
        2 => "running",
        _ => "held",
    }
}

/// Values storable in a TEXT column, biased toward SQL-hostile text.
fn body_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        "\\PC{0,20}".prop_map(|s| Value::Text(s.into())),
    ]
}

/// Values storable in an INT column.
fn score_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-50..50i64).prop_map(Value::Int),
    ]
}

fn notes_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT, score INT)")
        .unwrap();
    db.execute("CREATE INDEX ON notes (score)").unwrap();
    db
}

fn fresh_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT NOT NULL, runtime_ms INT)")
        .unwrap();
    db.execute("CREATE INDEX ON jobs (state)").unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying an arbitrary operation sequence keeps every index consistent
    /// with the heap, and the row count matches a naive model.
    #[test]
    fn random_operations_preserve_index_consistency(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let db = fresh_db();
        let mut model: std::collections::BTreeMap<i64, u8> = std::collections::BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert { id, state, runtime } => {
                    let result = db.execute(&format!(
                        "INSERT INTO jobs VALUES ({id}, '{}', {runtime})", state_name(*state)
                    ));
                    if model.contains_key(id) {
                        prop_assert!(result.is_err(), "duplicate primary key must be rejected");
                    } else {
                        prop_assert!(result.is_ok());
                        model.insert(*id, *state);
                    }
                }
                Op::UpdateState { id, state } => {
                    let n = db.execute(&format!(
                        "UPDATE jobs SET state = '{}' WHERE job_id = {id}", state_name(*state)
                    )).unwrap().affected();
                    prop_assert_eq!(n, usize::from(model.contains_key(id)));
                    if model.contains_key(id) {
                        model.insert(*id, *state);
                    }
                }
                Op::Delete { id } => {
                    let n = db.execute(&format!("DELETE FROM jobs WHERE job_id = {id}")).unwrap().affected();
                    prop_assert_eq!(n, usize::from(model.remove(id).is_some()));
                }
            }
        }
        db.check_consistency().unwrap();
        prop_assert_eq!(db.table_len("jobs").unwrap(), model.len());
        // The secondary index answers state counts identically to the model.
        for state in 0..4u8 {
            let expected = model.values().filter(|s| **s == state).count() as i64;
            let got = db.query(&format!(
                "SELECT COUNT(*) FROM jobs WHERE state = '{}'", state_name(state)
            )).unwrap().scalar_int().unwrap();
            prop_assert_eq!(got, expected);
        }
    }

    /// Recovering from the write-ahead log reproduces exactly the committed
    /// contents, whatever the operation history was.
    #[test]
    fn wal_recovery_reproduces_committed_state(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let db = fresh_db();
        for op in &ops {
            match op {
                Op::Insert { id, state, runtime } => {
                    let _ = db.execute(&format!(
                        "INSERT INTO jobs VALUES ({id}, '{}', {runtime})", state_name(*state)
                    ));
                }
                Op::UpdateState { id, state } => {
                    let _ = db.execute(&format!(
                        "UPDATE jobs SET state = '{}' WHERE job_id = {id}", state_name(*state)
                    ));
                }
                Op::Delete { id } => {
                    let _ = db.execute(&format!("DELETE FROM jobs WHERE job_id = {id}"));
                }
            }
        }
        let recovered = Database::recover_from(db.snapshot_wal()).unwrap();
        recovered.check_consistency().unwrap();
        let original = db.query("SELECT * FROM jobs ORDER BY job_id").unwrap();
        let replayed = recovered.query("SELECT * FROM jobs ORDER BY job_id").unwrap();
        prop_assert_eq!(original, replayed);
    }

    /// A rolled-back transaction leaves no trace, no matter what it did.
    #[test]
    fn rollback_is_invisible(ops in prop::collection::vec(op_strategy(), 1..40), seed_rows in 1..30i64) {
        let db = fresh_db();
        for id in 0..seed_rows {
            db.execute(&format!("INSERT INTO jobs VALUES ({id}, 'idle', 1000)")).unwrap();
        }
        let before = db.query("SELECT * FROM jobs ORDER BY job_id").unwrap();

        let txn = db.begin();
        for op in &ops {
            let sql = match op {
                Op::Insert { id, state, runtime } => format!(
                    "INSERT INTO jobs VALUES ({}, '{}', {runtime})", id + 1000, state_name(*state)
                ),
                Op::UpdateState { id, state } => format!(
                    "UPDATE jobs SET state = '{}' WHERE job_id = {id}", state_name(*state)
                ),
                Op::Delete { id } => format!("DELETE FROM jobs WHERE job_id = {id}"),
            };
            let _ = db.execute_in(txn, &sql);
        }
        db.rollback(txn).unwrap();

        let after = db.query("SELECT * FROM jobs ORDER BY job_id").unwrap();
        prop_assert_eq!(before, after);
        db.check_consistency().unwrap();
    }

    /// Prepared statements with bound parameters behave exactly like the
    /// equivalent literal SQL — across NULLs, negative numbers and
    /// injection-shaped text (quotes, comment dashes, backslashes) — for
    /// inserts, point predicates, index range predicates and DML.
    #[test]
    fn prepared_execution_matches_literal_sql(
        rows in prop::collection::vec((body_strategy(), score_strategy()), 1..25),
        probe_body in body_strategy(),
        probe_score in -50..50i64,
    ) {
        let lit_db = notes_db();
        let prep_db = notes_db();
        let ins = prep_db
            .prepare("INSERT INTO notes (id, body, score) VALUES (?, ?, ?)")
            .unwrap();
        for (i, (body, score)) in rows.iter().enumerate() {
            lit_db.execute(&format!(
                "INSERT INTO notes (id, body, score) VALUES ({i}, {}, {})",
                appserver::sql_literal(body),
                appserver::sql_literal(score),
            )).unwrap();
            prep_db
                .execute_prepared(&ins, &[Value::Int(i as i64), body.clone(), score.clone()])
                .unwrap();
        }
        let all_lit = lit_db.query("SELECT * FROM notes ORDER BY id").unwrap();
        let all_prep = prep_db.query("SELECT * FROM notes ORDER BY id").unwrap();
        prop_assert_eq!(&all_lit, &all_prep);

        // Equality over text, including quoted strings and NULL probes.
        let lit = lit_db.query(&format!(
            "SELECT id FROM notes WHERE body = {} ORDER BY id",
            appserver::sql_literal(&probe_body)
        )).unwrap();
        let q = prep_db.prepare("SELECT id FROM notes WHERE body = ? ORDER BY id").unwrap();
        let prep = prep_db.query_prepared(&q, std::slice::from_ref(&probe_body)).unwrap();
        prop_assert_eq!(lit, prep);

        // Range over the indexed int column (exercises the range access path).
        let hi = probe_score + 20;
        let lit = lit_db.query(&format!(
            "SELECT id FROM notes WHERE score >= {probe_score} AND score < {hi} ORDER BY id"
        )).unwrap();
        let q = prep_db
            .prepare("SELECT id FROM notes WHERE score >= ? AND score < ? ORDER BY id")
            .unwrap();
        let prep = prep_db
            .query_prepared(&q, &[Value::Int(probe_score), Value::Int(hi)])
            .unwrap();
        prop_assert_eq!(lit, prep);

        // DML parity: deleting by bound text affects the same rows.
        let lit_n = lit_db.execute(&format!(
            "DELETE FROM notes WHERE body = {}",
            appserver::sql_literal(&probe_body)
        )).unwrap().affected();
        let del = prep_db.prepare("DELETE FROM notes WHERE body = ?").unwrap();
        let prep_n = prep_db
            .execute_prepared(&del, std::slice::from_ref(&probe_body))
            .unwrap()
            .affected();
        prop_assert_eq!(lit_n, prep_n);
        lit_db.check_consistency().unwrap();
        prep_db.check_consistency().unwrap();
    }

    /// `execute_batch` is observationally equivalent to the loop of
    /// per-statement `execute_prepared` calls it replaces — same stored
    /// rows, same affected counts, same recovery result — across inserts
    /// (including NULL-bearing and SQL-hostile text bindings) and a
    /// follow-up update batch, even though the batch takes one catalog
    /// guard and appends one WAL record.
    #[test]
    fn execute_batch_matches_statement_loop(
        rows in prop::collection::vec((body_strategy(), score_strategy()), 1..30),
        bump in 1..20i64,
    ) {
        let batched = notes_db();
        let looped = notes_db();
        let ins_sql = "INSERT INTO notes (id, body, score) VALUES (?, ?, ?)";
        let upd_sql = "UPDATE notes SET score = ? WHERE id >= ?";

        let ins = batched.prepare(ins_sql).unwrap();
        let bindings: Vec<Vec<Value>> = rows
            .iter()
            .enumerate()
            .map(|(i, (body, score))| vec![Value::Int(i as i64), body.clone(), score.clone()])
            .collect();
        let n_batch = batched.session().execute_batch(&ins, bindings.clone()).unwrap();

        let ins = looped.prepare(ins_sql).unwrap();
        let mut n_loop = 0usize;
        for binding in &bindings {
            n_loop += looped
                .session()
                .execute(&ins, binding.as_slice())
                .unwrap()
                .affected();
        }
        prop_assert_eq!(n_batch, n_loop);

        // A second batch of updates over overlapping key ranges.
        let upd = batched.prepare(upd_sql).unwrap();
        let cutoffs: Vec<(i64, i64)> =
            (0..3).map(|k| (bump + k, k * (rows.len() as i64) / 3)).collect();
        let u_batch = batched
            .session()
            .execute_batch(&upd, cutoffs.clone())
            .unwrap();
        let upd = looped.prepare(upd_sql).unwrap();
        let mut u_loop = 0usize;
        for c in cutoffs {
            u_loop += looped.session().execute(&upd, c).unwrap().affected();
        }
        prop_assert_eq!(u_batch, u_loop);

        let q = "SELECT * FROM notes ORDER BY id";
        prop_assert_eq!(batched.query(q).unwrap(), looped.query(q).unwrap());
        batched.check_consistency().unwrap();

        // The single WAL batch record recovers to the same state the loop's
        // per-row records do.
        let from_batched = Database::recover_from(batched.snapshot_wal()).unwrap();
        let from_looped = Database::recover_from(looped.snapshot_wal()).unwrap();
        prop_assert_eq!(from_batched.query(q).unwrap(), from_looped.query(q).unwrap());
    }

    /// SQL-literal escaping survives arbitrary text round-trips through the
    /// parser and the storage engine (the entity layer depends on this).
    #[test]
    fn text_values_round_trip_through_sql(text in "\\PC{0,40}") {
        let db = Database::new();
        db.execute("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)").unwrap();
        let literal = appserver::sql_literal(&Value::Text(text.clone().into()));
        db.execute(&format!("INSERT INTO notes VALUES (1, {literal})")).unwrap();
        let r = db.query("SELECT body FROM notes WHERE id = 1").unwrap();
        prop_assert_eq!(r.rows[0].clone(), Row::new(vec![Value::Text(text.into())]));
        let _ = OpStats::default();
    }
}
