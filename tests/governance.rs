//! Integration tests of the resource-governance layer: statement deadlines
//! and cooperative cancellation, row/byte budgets, bounded lock waits, the
//! idle-transaction reaper, and the same limits enforced end-to-end over
//! the wire protocol. Every refusal must be a *typed* error with the right
//! retry class — `Timeout{LockWait}` is retryable, `Timeout{Statement}` and
//! `ResourceExhausted` are logic errors the caller must not blindly retry.

use relstore::{Database, Error, ErrorClass, Governance, TimeoutKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wire::{serve_with, Client, ServerConfig};

fn db_with_rows(rows: i64) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
    let ins = db.prepare("INSERT INTO jobs VALUES (?, ?)").unwrap();
    db.session()
        .execute_batch(&ins, (0..rows).map(|id| (id, "idle")))
        .unwrap();
    db
}

#[test]
fn statement_deadline_cancels_a_scan_with_a_logic_class_timeout() {
    let db = db_with_rows(500);
    let gov = Governance {
        deadline: Some(Duration::ZERO),
        check_interval: Some(8),
        ..Governance::default()
    };
    let err = db
        .query_governed("SELECT * FROM jobs WHERE state = 'idle'", &gov)
        .unwrap_err();
    assert!(
        matches!(err, Error::Timeout { kind: TimeoutKind::Statement, .. }),
        "{err}"
    );
    assert_eq!(err.class(), ErrorClass::Logic);
    assert!(!err.is_retryable(), "a deadline overrun must not invite a blind retry");
    assert_eq!(db.stats().statements_timed_out, 1);

    // An unlimited statement on the same table still works: the failure
    // cancelled one statement, not the connection or the engine.
    assert_eq!(db.query("SELECT * FROM jobs").unwrap().rows.len(), 500);
}

#[test]
fn cancellation_token_stops_a_statement_from_another_thread() {
    let db = db_with_rows(200);
    let cancel = Arc::new(AtomicBool::new(true)); // pre-cancelled: trips at the first boundary
    let gov = Governance {
        cancel: Some(Arc::clone(&cancel)),
        check_interval: Some(1),
        ..Governance::default()
    };
    let err = db.query_governed("SELECT * FROM jobs", &gov).unwrap_err();
    assert!(matches!(err, Error::Timeout { kind: TimeoutKind::Statement, .. }), "{err}");

    // Clearing the token lets the same governance run to completion.
    cancel.store(false, Ordering::Relaxed);
    assert_eq!(db.query_governed("SELECT * FROM jobs", &gov).unwrap().rows.len(), 200);
}

#[test]
fn row_and_byte_budgets_trip_before_rows_are_returned() {
    let db = db_with_rows(100);

    let rows = Governance {
        max_rows: Some(10),
        ..Governance::default()
    };
    let err = db.query_governed("SELECT * FROM jobs", &rows).unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");
    assert_eq!(err.class(), ErrorClass::Logic);

    let bytes = Governance {
        max_bytes: Some(64),
        ..Governance::default()
    };
    let err = db.query_governed("SELECT * FROM jobs", &bytes).unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");

    assert_eq!(db.stats().statements_over_budget, 2);
    // A point select fits comfortably inside both budgets.
    let got = db
        .query_governed("SELECT state FROM jobs WHERE job_id = 7", &rows)
        .unwrap();
    assert_eq!(got.rows.len(), 1);
}

#[test]
fn bounded_lock_wait_outlasts_a_short_writer() {
    let db = db_with_rows(4);
    let txn = db.begin();
    db.execute_in(txn, "UPDATE jobs SET state = 'held' WHERE job_id = 0").unwrap();

    // A second writer with a generous lock-wait budget blocks while the
    // first transaction holds the table lock, then proceeds once it
    // commits — no LockConflict surfaces at all.
    std::thread::scope(|s| {
        let db = &db;
        let waiter = s.spawn(move || {
            let gov = Governance {
                lock_wait: Some(Duration::from_secs(5)),
                ..Governance::default()
            };
            db.execute_governed("UPDATE jobs SET state = 'won' WHERE job_id = 1", &gov)
        });
        std::thread::sleep(Duration::from_millis(40));
        db.commit(txn).unwrap();
        waiter.join().unwrap().unwrap();
    });

    let stats = db.stats();
    assert!(stats.lock_waits >= 1, "the waiter must have recorded its wait");
    assert_eq!(stats.lock_wait_timeouts, 0);
    let state: Vec<String> = db
        .session()
        .query_scalars("SELECT state FROM jobs WHERE job_id = 1", ())
        .unwrap();
    assert_eq!(state, vec!["won".to_string()]);
}

#[test]
fn bounded_lock_wait_expires_with_a_retryable_timeout() {
    let db = db_with_rows(4);
    let txn = db.begin();
    db.execute_in(txn, "UPDATE jobs SET state = 'held' WHERE job_id = 0").unwrap();

    let gov = Governance {
        lock_wait: Some(Duration::from_millis(20)),
        ..Governance::default()
    };
    let err = db
        .execute_governed("UPDATE jobs SET state = 'lost' WHERE job_id = 1", &gov)
        .unwrap_err();
    assert!(matches!(err, Error::Timeout { kind: TimeoutKind::LockWait, .. }), "{err}");
    assert_eq!(err.class(), ErrorClass::Retryable);
    assert!(err.is_retryable(), "a lock-wait expiry is exactly what retries are for");
    let stats = db.stats();
    assert!(stats.lock_waits >= 1);
    assert!(stats.lock_wait_timeouts >= 1);

    // Zero wait (the embedded default) keeps the seed's fail-fast contract.
    let err = db
        .execute("UPDATE jobs SET state = 'lost' WHERE job_id = 1")
        .unwrap_err();
    assert!(matches!(err, Error::LockConflict(_)), "{err}");
    db.rollback(txn).unwrap();
}

#[test]
fn a_statement_deadline_caps_the_lock_wait_too() {
    let db = db_with_rows(4);
    let txn = db.begin();
    db.execute_in(txn, "UPDATE jobs SET state = 'held' WHERE job_id = 0").unwrap();

    // The statement deadline (20ms) is tighter than the lock-wait budget
    // (10s): the waiter must give up when the *statement* expires rather
    // than camping on the lock for ten seconds.
    let gov = Governance {
        deadline: Some(Duration::from_millis(20)),
        lock_wait: Some(Duration::from_secs(10)),
        ..Governance::default()
    };
    let start = std::time::Instant::now();
    let err = db
        .execute_governed("UPDATE jobs SET state = 'lost' WHERE job_id = 1", &gov)
        .unwrap_err();
    assert!(start.elapsed() < Duration::from_secs(5), "deadline must cut the wait short");
    assert!(matches!(err, Error::Timeout { .. }), "{err}");
    db.rollback(txn).unwrap();
}

#[test]
fn reaper_aborts_idle_transactions_and_releases_their_locks() {
    let db = db_with_rows(4);
    db.execute("CREATE TABLE side (id INT PRIMARY KEY, v TEXT)").unwrap();
    db.execute("INSERT INTO side VALUES (1, 'start')").unwrap();

    let abandoned = db.begin();
    db.execute_in(abandoned, "UPDATE jobs SET state = 'zombie' WHERE job_id = 0").unwrap();

    // A transaction that keeps executing statements (on its own table —
    // write locks are table-level) is *not* idle and must survive the
    // reaper no matter how long ago it began.
    let live = db.begin();
    db.execute_in(live, "UPDATE side SET v = 'busy' WHERE id = 1").unwrap();

    std::thread::sleep(Duration::from_millis(30));
    db.execute_in(live, "UPDATE side SET v = 'busy2' WHERE id = 1").unwrap();
    let reaped = db.reap_idle(Duration::from_millis(25));
    assert_eq!(reaped, 1, "exactly the abandoned transaction is reaped");
    assert_eq!(db.stats().txns_reaped, 1);

    // The zombie's lock is gone (a new writer gets through), its update is
    // undone, and finishing it reports the transaction as closed.
    db.execute("UPDATE jobs SET state = 'fresh' WHERE job_id = 0").unwrap();
    assert!(matches!(db.commit(abandoned).unwrap_err(), Error::TxnClosed(_)));
    db.commit(live).unwrap();

    let state: Vec<String> = db
        .session()
        .query_scalars("SELECT state FROM jobs WHERE job_id = 0", ())
        .unwrap();
    assert_eq!(state, vec!["fresh".to_string()]);
    let side: Vec<String> = db
        .session()
        .query_scalars("SELECT v FROM side WHERE id = 1", ())
        .unwrap();
    assert_eq!(side, vec!["busy2".to_string()]);
    db.check_consistency().unwrap();
}

#[test]
fn reaping_unpins_the_vacuum_horizon() {
    let db = db_with_rows(8);
    let pinner = db.begin();
    db.execute_in(pinner, "SELECT * FROM jobs").unwrap();

    // Churn some versions while the idle reader pins the horizon.
    for _ in 0..3 {
        db.execute("UPDATE jobs SET state = 'churn' WHERE job_id = 2").unwrap();
    }
    std::thread::sleep(Duration::from_millis(15));
    assert_eq!(db.reap_idle(Duration::from_millis(10)), 1);
    assert!(db.stats().horizon_lag >= 1, "the lag gauge saw the pinned horizon");

    // With the pinner gone the dead versions are reclaimable again.
    let reclaimed = db.vacuum_all();
    assert!(reclaimed > 0, "vacuum must reclaim the churned versions");
    db.check_consistency().unwrap();
}

// --- the same limits, end to end over TCP ------------------------------------

fn governed_server(db: Arc<Database>, config: ServerConfig) -> wire::ServerHandle {
    serve_with(db, "127.0.0.1:0", config).unwrap()
}

#[test]
fn wire_deadline_and_budgets_surface_typed_errors() {
    let db = Arc::new(db_with_rows(3000));
    let server = governed_server(
        Arc::clone(&db),
        ServerConfig {
            max_result_rows: Some(100),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The server-side row cap trips regardless of what the client asks for.
    let err = client.query("SELECT * FROM jobs", ()).unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");
    assert_eq!(err.class(), ErrorClass::Logic);

    // A client-attached zero deadline expires at the first check boundary;
    // the error arrives with its kind and class intact.
    client.set_statement_deadline(Some(Duration::ZERO));
    let err = client.query("SELECT * FROM jobs WHERE state = 'idle'", ()).unwrap_err();
    assert!(matches!(err, Error::Timeout { kind: TimeoutKind::Statement, .. }), "{err}");
    assert_eq!(err.class(), ErrorClass::Logic);

    // Clearing the deadline restores service on the same connection.
    client.set_statement_deadline(None);
    let one = client.query("SELECT state FROM jobs WHERE job_id = 9", ()).unwrap();
    assert_eq!(one.rows.len(), 1);
    assert!(db.stats().statements_timed_out >= 1);
    assert!(db.stats().statements_over_budget >= 1);
    drop(client);
    server.shutdown();
}

#[test]
fn wire_lock_conflicts_wait_then_time_out_retryably() {
    let db = Arc::new(db_with_rows(4));
    let server = governed_server(
        Arc::clone(&db),
        ServerConfig {
            lock_wait_timeout: Duration::from_millis(30),
            ..ServerConfig::default()
        },
    );
    let mut holder = Client::connect(server.local_addr()).unwrap();
    holder.begin().unwrap();
    holder.execute("UPDATE jobs SET state = 'held' WHERE job_id = 0", ()).unwrap();

    let mut blocked = Client::connect(server.local_addr()).unwrap();
    let err = blocked
        .execute("UPDATE jobs SET state = 'nope' WHERE job_id = 1", ())
        .unwrap_err();
    assert!(matches!(err, Error::Timeout { kind: TimeoutKind::LockWait, .. }), "{err}");
    assert!(err.is_retryable());

    // After the holder commits, a plain retry loop gets through.
    holder.commit().unwrap();
    blocked
        .with_retries(10, |c| c.execute("UPDATE jobs SET state = 'yes' WHERE job_id = 1", ()))
        .unwrap();
    assert!(db.stats().lock_wait_timeouts >= 1);
    drop((holder, blocked));
    server.shutdown();
}

#[test]
fn wire_reaper_aborts_an_abandoned_but_connected_transaction() {
    let db = Arc::new(db_with_rows(4));
    let server = governed_server(
        Arc::clone(&db),
        ServerConfig {
            idle_txn_timeout: Some(Duration::from_millis(40)),
            reap_interval: Duration::from_millis(10),
            lock_wait_timeout: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    );

    // The abandoner keeps its socket open (so the connection-level idle
    // reap never fires) but goes silent inside a transaction that holds
    // the table lock.
    let mut abandoner = Client::connect(server.local_addr()).unwrap();
    abandoner.begin().unwrap();
    abandoner.execute("UPDATE jobs SET state = 'zombie' WHERE job_id = 0", ()).unwrap();

    // Another client eventually gets the lock: the reaper aborted the
    // zombie transaction server-side.
    let mut worker = Client::connect(server.local_addr()).unwrap();
    worker
        .with_retries_deadline(1000, Duration::from_secs(10), |c| {
            c.execute("UPDATE jobs SET state = 'alive' WHERE job_id = 0", ())
        })
        .unwrap();
    assert!(db.stats().txns_reaped >= 1, "the reaper did the unblocking");

    // The abandoner's next commit reports the transaction already closed.
    let err = abandoner.commit().unwrap_err();
    assert!(matches!(err, Error::TxnClosed(_)), "{err}");

    let state: Vec<String> = worker
        .query_scalars("SELECT state FROM jobs WHERE job_id = 0", ())
        .unwrap();
    assert_eq!(state, vec!["alive".to_string()], "the zombie's write is gone");
    drop((abandoner, worker));
    server.shutdown();
    db.check_consistency().unwrap();
}

#[test]
fn client_drop_rolls_back_promptly() {
    let db = Arc::new(db_with_rows(2));
    let server = governed_server(Arc::clone(&db), ServerConfig::default());

    {
        let mut dying = Client::connect(server.local_addr()).unwrap();
        dying.begin().unwrap();
        dying.execute("UPDATE jobs SET state = 'doomed' WHERE job_id = 0", ()).unwrap();
        // Dropped mid-transaction: the client sends a best-effort Rollback
        // before the socket closes.
    }

    // The rollback frame beats the server's close-detection polling, so a
    // *zero-wait* writer gets the lock almost immediately.
    let mut next = Client::connect(server.local_addr()).unwrap();
    next.with_retries_deadline(200, Duration::from_secs(5), |c| {
        c.execute("UPDATE jobs SET state = 'next' WHERE job_id = 0", ())
    })
    .unwrap();
    let state: Vec<String> = next
        .query_scalars("SELECT state FROM jobs WHERE job_id = 0", ())
        .unwrap();
    assert_eq!(state, vec!["next".to_string()]);
    drop(next);
    server.shutdown();
}

/// The join executor charges the governor for intermediate rows, so a
/// runaway join — here a near-cross-product through a nested loop — trips
/// the row budget and the deadline instead of materializing millions of
/// pairs. An equi-join that stays small passes under the same governance.
#[test]
fn join_loops_are_governed() {
    let db = db_with_rows(400);
    db.execute("CREATE TABLE mirror (id INT PRIMARY KEY)").unwrap();
    let ins = db.prepare("INSERT INTO mirror VALUES (?)").unwrap();
    db.session()
        .execute_batch(&ins, (0..400i64).map(|id| (id,)))
        .unwrap();

    let rows = Governance {
        max_rows: Some(1_000),
        ..Governance::default()
    };
    let err = db
        .query_governed(
            "SELECT COUNT(*) FROM jobs JOIN mirror ON jobs.job_id < mirror.id",
            &rows,
        )
        .unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");

    let deadline = Governance {
        deadline: Some(Duration::ZERO),
        ..Governance::default()
    };
    let err = db
        .query_governed(
            "SELECT COUNT(*) FROM jobs JOIN mirror ON jobs.job_id < mirror.id",
            &deadline,
        )
        .unwrap_err();
    assert!(matches!(err, Error::Timeout { kind: TimeoutKind::Statement, .. }), "{err}");

    // A selective equi-join fits the same row budget.
    let r = db
        .query_governed(
            "SELECT COUNT(*) FROM jobs JOIN mirror ON jobs.job_id = mirror.id WHERE jobs.job_id = 3",
            &rows,
        )
        .unwrap();
    assert_eq!(r.scalar_int().unwrap(), 1);
}
