//! Cross-crate integration tests: full job lifecycles on both systems, the
//! head-to-head comparisons the paper draws, and failure injection.

use cluster_sim::{ClusterSpec, JobSpec, SimDuration, SimTime};
use condor::{CondorConfig, CondorSimulation};
use condorj2::{CondorJ2Config, CondorJ2Simulation};
use relstore::Database;

/// Both systems are given the identical workload and cluster; both must
/// complete every job.
#[test]
fn both_systems_complete_the_same_workload() {
    let spec = ClusterSpec::uniform_fast(10, 2);
    let jobs = JobSpec::fixed_batch(60, SimDuration::from_secs(60), "shared-user");

    let mut j2 = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, 5);
    j2.submit(jobs.clone());
    j2.run_to_completion(SimTime::from_mins(120));
    assert_eq!(j2.completed(), 60);

    let mut condor = CondorSimulation::new(
        CondorConfig {
            job_throttle_per_sec: 1.0,
            negotiation_interval: SimDuration::from_secs(10),
            ..CondorConfig::default()
        },
        &spec,
        5,
    );
    condor.submit(0, jobs);
    condor.run_to_completion(SimTime::from_mins(120));
    assert_eq!(condor.completed(), 60);
}

/// The paper's Section 4.2.3 claim in numbers: CondorJ2 moves a job through
/// fewer entities and fewer communication channels than Condor.
#[test]
fn condorj2_uses_fewer_entities_and_channels() {
    let condor_trace = workloads::condor_dataflow_trace(2);
    let j2_trace = workloads::condorj2_dataflow_trace(2);
    assert!(j2_trace.entities().len() < condor_trace.entities().len());
    assert!(j2_trace.channels().len() < condor_trace.channels().len());
    assert_eq!(condor_trace.channels().len(), 10);
    assert_eq!(j2_trace.channels().len(), 4);
}

/// All CondorJ2 state lives in the database, so a CAS crash loses nothing that
/// was committed: rebuild the database from the write-ahead log and the job
/// queue is intact.
#[test]
fn condorj2_state_survives_cas_crash_via_wal_recovery() {
    let spec = ClusterSpec::uniform_fast(4, 2);
    let mut pool = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, 9);
    pool.submit(JobSpec::fixed_batch(30, SimDuration::from_mins(5), "resilient"));
    pool.run_until(SimTime::from_mins(2));

    let db = pool.cas().database();
    let jobs_before = db.table_len("jobs").unwrap();
    let running_before = db.table_len("runs").unwrap();
    assert!(jobs_before > 0);

    // Simulate a CAS/DBMS crash and restart: recover from the log only.
    let recovered = Database::recover_from(db.snapshot_wal()).unwrap();
    assert_eq!(recovered.table_len("jobs").unwrap(), jobs_before);
    assert_eq!(recovered.table_len("runs").unwrap(), running_before);
    assert_eq!(recovered.table_len("machines").unwrap(), 8);
    recovered.check_consistency().unwrap();

    // The recovered database answers the same operational queries.
    let r = recovered
        .query("SELECT COUNT(*) FROM jobs WHERE state = 'running'")
        .unwrap();
    assert!(r.scalar_int().unwrap() >= 0);
}

/// In Condor, the in-memory collector/negotiator pair is a single point where
/// matchmaking stops; in CondorJ2 there is no matchmaking while the scheduler
/// pass is the only consumer of the same data, but the data itself survives in
/// the database. This test exercises the Condor half of that contrast.
#[test]
fn condor_matchmaking_outage_delays_but_does_not_lose_jobs() {
    let spec = ClusterSpec::uniform_fast(6, 1);
    let mut sim = CondorSimulation::new(
        CondorConfig {
            job_throttle_per_sec: 2.0,
            negotiation_interval: SimDuration::from_secs(5),
            ..CondorConfig::default()
        },
        &spec,
        3,
    );
    sim.fail_collector();
    sim.submit(0, JobSpec::fixed_batch(6, SimDuration::from_secs(30), "patient"));
    sim.run_until(SimTime::from_mins(3));
    assert_eq!(sim.completed(), 0);
    sim.restart_collector();
    sim.run_to_completion(SimTime::from_mins(30));
    assert_eq!(sim.completed(), 6);
}

/// The CondorJ2 scheduling-throughput advantage: with short jobs, a Condor
/// schedd at its default throttle cannot keep a cluster busy that CondorJ2
/// saturates comfortably (the contrast between Figure 7 and Figure 13).
#[test]
fn condorj2_sustains_higher_turnover_than_a_throttled_schedd() {
    let spec = ClusterSpec::uniform_fast(15, 4); // 60 slots
    let jobs = JobSpec::fixed_batch(600, SimDuration::from_secs(30), "turnover");

    let mut j2 = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, 21);
    j2.submit(jobs.clone());
    let j2_end = j2.run_to_completion(SimTime::from_mins(120));

    let mut condor = CondorSimulation::new(CondorConfig::default(), &spec, 21);
    condor.submit(0, jobs);
    let condor_end = condor.run_to_completion(SimTime::from_mins(240));

    assert_eq!(j2.completed(), 600);
    assert_eq!(condor.completed(), 600);
    // 600 jobs at the default 0.5 jobs/s throttle take at least 20 minutes of
    // start processing alone; CondorJ2 is limited only by the cluster.
    assert!(
        j2_end.as_mins_f64() * 1.5 < condor_end.as_mins_f64(),
        "CondorJ2 {:.1} min vs Condor {:.1} min",
        j2_end.as_mins_f64(),
        condor_end.as_mins_f64()
    );
}

/// Administrators can pose ad-hoc relational queries over live CondorJ2 state —
/// the extensibility argument of Section 4.2.3 — including joins between jobs,
/// runs and machines.
#[test]
fn operational_data_answers_ad_hoc_queries() {
    let spec = ClusterSpec::uniform_fast(6, 2);
    let mut pool = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, 13);
    pool.submit(JobSpec::fixed_batch(24, SimDuration::from_mins(4), "analyst"));
    pool.run_until(SimTime::from_mins(2));

    let db = pool.cas().database();
    let joined = db
        .query(
            "SELECT jobs.job_id, machines.name FROM jobs \
             JOIN runs ON jobs.job_id = runs.job_id \
             JOIN machines ON runs.machine_id = machines.machine_id \
             ORDER BY jobs.job_id",
        )
        .unwrap();
    assert!(!joined.is_empty(), "some jobs should be running");
    let counts = db
        .query("SELECT state, COUNT(*) AS n FROM jobs GROUP BY state ORDER BY state")
        .unwrap();
    assert!(!counts.is_empty());
}
