//! Integration tests of the observability subsystem: virtual system tables
//! served through the ordinary SELECT path, the slow-query ring, the
//! statement/histogram accounting invariant, and transport-equivalence —
//! a wire client must see the same system-table data the embedded API does.

use relstore::{Database, DurabilityPolicy, MemDevice, Value};
use std::sync::Arc;
use std::time::Duration;
use wire::{serve_with, Client, ServerConfig};

fn first_int(db: &Database, sql: &str, column: &str) -> i64 {
    match db.query(sql).unwrap().first_value(column).unwrap() {
        Value::Int(n) => *n,
        other => panic!("{column} was {other:?}, not an Int"),
    }
}

/// Every observability surface answers plain SQL on a live database, and
/// every statement the engine counted has exactly one histogram sample.
#[test]
fn system_tables_return_live_data() {
    let db = Database::new();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
    let ins = db.prepare("INSERT INTO jobs VALUES (?, 'idle')").unwrap();
    for i in 0..20i64 {
        db.execute_prepared(&ins, &[i.into()]).unwrap();
    }
    for _ in 0..5 {
        db.query("SELECT COUNT(*) AS n FROM jobs").unwrap();
    }

    // rel_stats mirrors OpStats one row per counter.
    let commits = first_int(&db, "SELECT value FROM rel_stats WHERE name = 'commits'", "value");
    assert_eq!(commits, 21, "20 inserts + 1 DDL");

    // rel_histograms has the per-kind statement histograms.
    let inserts =
        first_int(&db, "SELECT count FROM rel_histograms WHERE name = 'stmt.insert'", "count");
    assert_eq!(inserts, 20);

    // rel_statements profiles the prepared insert across all 20 calls.
    let profiles = db.query("SELECT sql, calls, total_rows FROM rel_statements").unwrap();
    let idx = profiles.column_index("sql").unwrap();
    let row = profiles
        .rows
        .iter()
        .find(|r| *r.get(idx) == Value::Text("INSERT INTO jobs VALUES (?, 'idle')".into()))
        .expect("prepared insert must be profiled");
    assert_eq!(*row.get(profiles.column_index("calls").unwrap()), Value::Int(20));
    assert_eq!(*row.get(profiles.column_index("total_rows").unwrap()), Value::Int(20));

    // A checkpoint leaves a coarse span in rel_events.
    db.checkpoint().unwrap();
    let events = first_int(
        &db,
        "SELECT COUNT(*) AS n FROM rel_events WHERE kind = 'checkpoint'",
        "n",
    );
    assert_eq!(events, 1);

    // The accounting invariant: one histogram sample per counted statement.
    // (The SELECTs over system tables above were themselves counted.)
    let executed = db.stats().statements_executed;
    assert_eq!(db.obs().histograms.statement_total(), executed);
}

/// System tables compose with the full SELECT surface: aggregates, ORDER
/// BY, LIMIT, and joins *between* system tables — while a join that mixes a
/// system table with a real table is rejected, not silently wrong.
#[test]
fn system_tables_support_full_select_and_join_each_other() {
    let db = Database::new();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO jobs VALUES (1)").unwrap();

    let n = first_int(&db, "SELECT COUNT(*) AS n FROM rel_stats", "n");
    assert!(n > 20, "rel_stats has one row per OpStats field, got {n}");

    db.query("SELECT name, value FROM rel_stats ORDER BY value DESC LIMIT 3").unwrap();

    // System tables join with each other through the ordinary executor.
    let joined = db
        .query(
            "SELECT rel_stats.name, rel_histograms.count FROM rel_stats \
             JOIN rel_histograms ON rel_stats.name = rel_histograms.name",
        )
        .unwrap();
    // Nothing shares names across the two tables today; the join must still
    // plan and execute (zero rows is the correct answer).
    assert_eq!(joined.rows.len(), 0);

    // Mixing a system table with a real table is a type error.
    let err = db
        .query(
            "SELECT rel_histograms.name FROM rel_histograms \
             JOIN jobs ON rel_histograms.count = jobs.job_id",
        )
        .unwrap_err();
    assert!(err.to_string().contains("system tables"), "got: {err}");
}

/// A real table with a system table's name shadows it: user data wins, and
/// dropping the table restores the virtual view.
#[test]
fn real_tables_shadow_system_tables() {
    let db = Database::new();
    db.execute("CREATE TABLE rel_stats (name TEXT PRIMARY KEY, value INT)").unwrap();
    db.execute("INSERT INTO rel_stats VALUES ('mine', 7)").unwrap();
    let r = db.query("SELECT name, value FROM rel_stats").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.first_value("name"), Some(&Value::Text("mine".into())));

    db.execute("DROP TABLE rel_stats").unwrap();
    let r = db.query("SELECT name FROM rel_stats WHERE name = 'commits'").unwrap();
    assert_eq!(r.rows.len(), 1, "virtual table visible again after DROP");
}

/// The slow-query ring: disarmed by default, captures everything at a zero
/// threshold with a wait breakdown, keeps a monotonic sequence across
/// clear(), and disarms again on None.
#[test]
fn slow_query_log_arms_captures_and_disarms() {
    let db = Database::new();
    assert_eq!(db.slow_query_threshold(), None);
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY)").unwrap();
    assert!(db.obs().slow_log.entries().is_empty(), "disarmed log captures nothing");

    db.set_slow_query_threshold(Some(Duration::ZERO));
    db.execute("INSERT INTO jobs VALUES (1)").unwrap();
    db.query("SELECT * FROM jobs").unwrap();
    let entries = db.obs().slow_log.entries();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].sql.as_deref(), Some("INSERT INTO jobs VALUES (1)"));
    assert_eq!(entries[1].rows, 1);
    assert!(entries[0].seq < entries[1].seq);
    assert_eq!(db.stats().slow_queries, 2);

    // The ring is queryable as SQL too, including the wait-breakdown columns.
    let r = db
        .query("SELECT seq, sql, duration_us, lock_wait_us, fsync_us FROM rel_slow_queries")
        .unwrap();
    // The SELECT over rel_slow_queries itself gets captured only *after* it
    // snapshots the ring, so it sees the two prior entries.
    assert_eq!(r.rows.len(), 2);

    // seq survives clear(): later entries never reuse earlier numbers.
    let last_seq = db.obs().slow_log.entries().last().unwrap().seq;
    db.obs().slow_log.clear();
    db.execute("INSERT INTO jobs VALUES (2)").unwrap();
    let after = db.obs().slow_log.entries();
    assert_eq!(after.len(), 1);
    assert!(after[0].seq > last_seq);

    db.set_slow_query_threshold(None);
    db.obs().slow_log.clear();
    db.execute("INSERT INTO jobs VALUES (3)").unwrap();
    assert!(db.obs().slow_log.entries().is_empty(), "None disarms the log");
}

/// Failed statements are first-class: they are counted, histogrammed, and
/// the invariant holds — with the one documented exception (a SELECT inside
/// an already-dead transaction fails before anything is counted).
#[test]
fn failed_statements_keep_the_accounting_invariant() {
    let db = Database::new();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO jobs VALUES (1)").unwrap();
    db.execute("INSERT INTO jobs VALUES (1)").unwrap_err(); // duplicate key
    db.query("SELECT * FROM missing").unwrap_err(); // no such table
    db.execute("UPDATE jobs SET job_id = NULL WHERE job_id = 1").unwrap_err();
    assert_eq!(db.obs().histograms.statement_total(), db.stats().statements_executed);
}

/// `ServerConfig::slow_query_threshold` arms the engine's ring at serve
/// time, and a wire client reads identical system-table data to the
/// embedded API — same SELECT path, no special protocol.
#[test]
fn wire_clients_see_the_same_system_tables() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
    let ins = db.prepare("INSERT INTO jobs VALUES (?, 'idle')").unwrap();
    for i in 0..10i64 {
        db.execute_prepared(&ins, &[i.into()]).unwrap();
    }

    let config = ServerConfig {
        slow_query_threshold: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    let server = serve_with(Arc::clone(&db), "127.0.0.1:0", config).unwrap();
    assert_eq!(db.slow_query_threshold(), Some(Duration::ZERO));
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Stable system-table slices must agree embedded vs remote. (Volatile
    // counters like statements_executed move with every query, so compare
    // data that the monitoring queries themselves do not perturb.)
    let queries = [
        "SELECT count FROM rel_histograms WHERE name = 'stmt.insert'",
        "SELECT sql, kind, calls, total_rows FROM rel_statements \
         WHERE sql = 'INSERT INTO jobs VALUES (?, ''idle'')'",
        "SELECT name, kind FROM rel_stats ORDER BY name",
    ];
    for sql in queries {
        let local = db.query(sql).unwrap();
        let remote = client.query(sql, ()).unwrap();
        assert_eq!(remote, local, "remote diverged for: {sql}");
    }

    // The client's own statements landed in the slow ring (threshold zero),
    // and the ring is visible over the wire.
    let r = client
        .query("SELECT COUNT(*) AS n FROM rel_slow_queries", ())
        .unwrap();
    match r.first_value("n").unwrap() {
        Value::Int(n) => assert!(*n >= 3, "client statements captured, got {n}"),
        other => panic!("unexpected {other:?}"),
    }

    server.shutdown();
}

/// Recovery leaves a span in rel_events describing what was replayed.
#[test]
fn recovery_records_an_event() {
    let db = Database::open_with_device(Box::new(MemDevice::new()), DurabilityPolicy::Always)
        .unwrap();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO jobs VALUES (1)").unwrap();
    db.flush_log().unwrap();
    let bytes = db.durable_log_bytes().unwrap();

    let reopened = Database::open_with_device(
        Box::new(MemDevice::with_contents(bytes)),
        DurabilityPolicy::Always,
    )
    .unwrap();
    let r = reopened
        .query("SELECT kind, detail FROM rel_events WHERE kind = 'recovery'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    match r.first_value("detail").unwrap() {
        Value::Text(detail) => {
            assert!(detail.contains("WAL record"), "got: {detail}")
        }
        other => panic!("unexpected {other:?}"),
    }
}
