//! Property-based tests of durable-log recovery: arbitrary single-byte
//! corruption in the committed region is always detected as
//! [`Error::Corruption`] (never a panic, never a silently wrong catalog),
//! and arbitrary tail truncation always recovers exactly the last
//! full-record prefix.

use proptest::prelude::*;
use relstore::io::{record_boundaries, SEGMENT_HEADER_LEN};
use relstore::{Database, DurabilityPolicy, Error, MemDevice};

/// Builds a durable log from a small parameterised workload and returns its
/// bytes. `rows` varies the log length so corruption/truncation positions
/// exercise records of several kinds and sizes.
fn build_log(rows: usize) -> Vec<u8> {
    let db =
        Database::open_with_device(Box::new(MemDevice::new()), DurabilityPolicy::Always).unwrap();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
    for i in 0..rows as i64 {
        db.execute(&format!("INSERT INTO jobs VALUES ({i}, 'job-{i}')")).unwrap();
    }
    if rows > 1 {
        db.execute("UPDATE jobs SET state = 'done' WHERE job_id = 0").unwrap();
        db.execute("DELETE FROM jobs WHERE job_id = 1").unwrap();
    }
    db.flush_log().unwrap();
    db.durable_log_bytes().unwrap()
}

fn open_bytes(bytes: Vec<u8>) -> relstore::Result<Database> {
    Database::open_with_device(
        Box::new(MemDevice::with_contents(bytes)),
        DurabilityPolicy::Always,
    )
}

/// The rows of `jobs`, as a comparable fingerprint.
fn rows_of(db: &Database) -> Vec<String> {
    if !db.table_names().iter().any(|t| t == "jobs") {
        return Vec::new();
    }
    let q = db.query("SELECT * FROM jobs ORDER BY job_id").unwrap();
    q.rows.iter().map(|r| format!("{r:?}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flipping any single byte strictly before the final record either
    /// fails recovery with `Error::Corruption` or — when the flip lands in
    /// the segment header — with the header-validation corruption error.
    /// It must never panic and never produce a successfully-opened database
    /// (the corrupt region is not the tail, so tail repair cannot apply).
    #[test]
    fn non_tail_byte_flips_are_always_detected(
        rows in 1usize..6,
        pos_seed in 0u64..u64::MAX,
        bit in 0u8..8,
    ) {
        let bytes = build_log(rows);
        let boundaries = record_boundaries(&bytes).unwrap();
        // The corruptible region: everything before the final record's
        // start. A flip in the final record is indistinguishable from a
        // torn/rotted tail and is allowed to truncate instead.
        let last_record_start = boundaries[boundaries.len() - 2] as usize;
        let pos = (pos_seed % last_record_start as u64) as usize;

        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;

        match open_bytes(corrupt) {
            Err(Error::Corruption(_)) => {} // the expected loud failure
            Err(other) => prop_assert!(
                false,
                "flip at {pos} bit {bit}: wrong error kind: {other}"
            ),
            Ok(_) => prop_assert!(
                false,
                "flip at {pos} bit {bit} (region ends {last_record_start}) \
                 was silently accepted"
            ),
        }
    }

    /// Truncating the log at any position recovers the same catalog as the
    /// longest clean record-boundary prefix — committed-prefix semantics at
    /// every possible crash point.
    #[test]
    fn any_truncation_recovers_the_last_full_record_prefix(
        rows in 1usize..6,
        cut_seed in 0u64..u64::MAX,
    ) {
        let bytes = build_log(rows);
        let boundaries = record_boundaries(&bytes).unwrap();
        let cut = SEGMENT_HEADER_LEN
            + (cut_seed % (bytes.len() - SEGMENT_HEADER_LEN + 1) as u64) as usize;
        let base = boundaries
            .iter()
            .rev()
            .find(|&&b| b as usize <= cut)
            .copied()
            .unwrap() as usize;

        let truncated = open_bytes(bytes[..cut].to_vec());
        prop_assert!(truncated.is_ok(), "cut at {cut}: {:?}", truncated.err());
        let truncated = truncated.unwrap();
        let reference = open_bytes(bytes[..base].to_vec()).unwrap();

        prop_assert_eq!(rows_of(&truncated), rows_of(&reference));
        prop_assert_eq!(
            truncated.stats().recovery_truncated_bytes,
            (cut - base) as u64
        );
        truncated.check_consistency().unwrap();
    }
}
