//! Planner equivalence and semantics tests.
//!
//! The core property: whatever join order, access path, or cached build the
//! cost-based planner picks, the result row-set must be identical to a naive
//! nested-loop join computed directly over the generated data — across NULL
//! join keys, duplicate keys, dangling foreign keys, empty tables, and stats
//! that have gone stale since `ANALYZE`. Deterministic tests pin down the
//! EXPLAIN output shape and the three-valued-logic corners of scalar and
//! `IN (SELECT …)` subqueries.

use proptest::prelude::*;
use relstore::{Database, QueryResult, Value};

const JOB_ARITY: usize = 4; // job_id, owner, state, runtime
const RUN_ARITY: usize = 3; // run_id, job_id, machine_id
const MACHINE_ARITY: usize = 2; // machine_id, state

type Job = (i64, Option<String>, String, Option<i64>);
type Run = (i64, Option<i64>, Option<i64>);
type Machine = (i64, String);

/// When the generated dataset runs `ANALYZE`: never (planner on defaults),
/// mid-load (stats stale by the time queries run), or after loading (fresh).
#[derive(Debug, Clone, Copy, PartialEq)]
enum AnalyzeMode {
    Never,
    MidLoad,
    AfterLoad,
}

#[derive(Debug, Clone)]
struct Dataset {
    jobs: Vec<Job>,
    runs: Vec<Run>,
    machines: Vec<Machine>,
    analyze: AnalyzeMode,
}

fn owner_strategy() -> impl Strategy<Value = Option<String>> {
    (0u8..5).prop_map(|n| match n {
        0 => None,
        1 | 2 => Some("alice".to_string()),
        3 => Some("bob".to_string()),
        _ => Some("carol".to_string()),
    })
}

fn state_strategy() -> impl Strategy<Value = String> {
    (0u8..3).prop_map(|n| match n {
        0 => "idle".to_string(),
        1 => "running".to_string(),
        _ => "done".to_string(),
    })
}

/// `None` roughly one time in five, else a value below `max`.
fn opt_int_strategy(max: i64) -> impl Strategy<Value = Option<i64>> {
    (-(max / 4 + 1)..max).prop_map(|v| (v >= 0).then_some(v))
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    let jobs = prop::collection::vec(
        (owner_strategy(), state_strategy(), opt_int_strategy(500)),
        0..20,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (owner, state, runtime))| (i as i64, owner, state, runtime))
            .collect::<Vec<Job>>()
    });
    // Foreign keys range past the actual table sizes so some are dangling.
    let runs = prop::collection::vec((opt_int_strategy(24), opt_int_strategy(10)), 0..24)
        .prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (job_id, machine_id))| (i as i64, job_id, machine_id))
                .collect::<Vec<Run>>()
        });
    let machines = prop::collection::vec(state_strategy(), 0..8).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, state)| (i as i64, state))
            .collect::<Vec<Machine>>()
    });
    let analyze = (0u8..3).prop_map(|n| match n {
        0 => AnalyzeMode::Never,
        1 => AnalyzeMode::MidLoad,
        _ => AnalyzeMode::AfterLoad,
    });
    (jobs, runs, machines, analyze).prop_map(|(jobs, runs, machines, analyze)| Dataset {
        jobs,
        runs,
        machines,
        analyze,
    })
}

fn opt_text(v: &Option<String>) -> Value {
    match v {
        Some(s) => Value::Text(s.as_str().into()),
        None => Value::Null,
    }
}

fn opt_int(v: &Option<i64>) -> Value {
    match v {
        Some(i) => Value::Int(*i),
        None => Value::Null,
    }
}

fn job_values(j: &Job) -> Vec<Value> {
    vec![Value::Int(j.0), opt_text(&j.1), Value::Text(j.2.as_str().into()), opt_int(&j.3)]
}

fn run_values(r: &Run) -> Vec<Value> {
    vec![Value::Int(r.0), opt_int(&r.1), opt_int(&r.2)]
}

fn machine_values(m: &Machine) -> Vec<Value> {
    vec![Value::Int(m.0), Value::Text(m.1.as_str().into())]
}

/// Loads the dataset into a fresh database, honouring the ANALYZE mode.
/// `MidLoad` analyzes after half the rows of each table, so the statistics
/// the planner sees undercount (or miss columns of) the final data.
fn load(d: &Dataset) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT, state TEXT, runtime INT)")
        .unwrap();
    db.execute("CREATE INDEX ON jobs (state)").unwrap();
    db.execute("CREATE TABLE runs (run_id INT PRIMARY KEY, job_id INT, machine_id INT)")
        .unwrap();
    db.execute("CREATE INDEX ON runs (job_id)").unwrap();
    db.execute("CREATE TABLE machines (machine_id INT PRIMARY KEY, state TEXT)")
        .unwrap();

    let insert_jobs = db
        .prepare("INSERT INTO jobs (job_id, owner, state, runtime) VALUES (?, ?, ?, ?)")
        .unwrap();
    let insert_runs = db
        .prepare("INSERT INTO runs (run_id, job_id, machine_id) VALUES (?, ?, ?)")
        .unwrap();
    let insert_machines = db
        .prepare("INSERT INTO machines (machine_id, state) VALUES (?, ?)")
        .unwrap();

    let split = |len: usize| match d.analyze {
        AnalyzeMode::MidLoad => len / 2,
        _ => len,
    };
    let (j_split, r_split, m_split) = (split(d.jobs.len()), split(d.runs.len()), split(d.machines.len()));

    for j in &d.jobs[..j_split] {
        db.execute_prepared(&insert_jobs, &job_values(j)).unwrap();
    }
    for r in &d.runs[..r_split] {
        db.execute_prepared(&insert_runs, &run_values(r)).unwrap();
    }
    for m in &d.machines[..m_split] {
        db.execute_prepared(&insert_machines, &machine_values(m)).unwrap();
    }

    if d.analyze != AnalyzeMode::Never {
        db.execute("ANALYZE").unwrap();
    }

    for j in &d.jobs[j_split..] {
        db.execute_prepared(&insert_jobs, &job_values(j)).unwrap();
    }
    for r in &d.runs[r_split..] {
        db.execute_prepared(&insert_runs, &run_values(r)).unwrap();
    }
    for m in &d.machines[m_split..] {
        db.execute_prepared(&insert_machines, &machine_values(m)).unwrap();
    }
    db
}

/// Canonical multiset form of a row-set: every row rendered to its debug
/// string, sorted. Two queries are equivalent iff these are equal.
fn multiset(rows: Vec<Vec<Value>>) -> Vec<String> {
    let mut out: Vec<String> = rows.into_iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

fn result_multiset(result: &QueryResult, arity: usize) -> Vec<String> {
    assert_eq!(result.columns.len(), arity, "unexpected output arity");
    multiset(
        result
            .rows
            .iter()
            .map(|r| (0..arity).map(|i| r.get(i).clone()).collect())
            .collect(),
    )
}

/// One query under test: SQL, its output arity, and the nested-loop oracle
/// computed straight from the generated vectors (SQL equality semantics:
/// NULL joins nothing).
struct Case {
    sql: &'static str,
    arity: usize,
    expected: Vec<String>,
}

fn cases(d: &Dataset) -> Vec<Case> {
    let mut out = Vec::new();

    // jobs ⋈ runs on job_id.
    let mut expected = Vec::new();
    for j in &d.jobs {
        for r in &d.runs {
            if r.1 == Some(j.0) {
                let mut row = job_values(j);
                row.extend(run_values(r));
                expected.push(row);
            }
        }
    }
    out.push(Case {
        sql: "SELECT * FROM jobs JOIN runs ON jobs.job_id = runs.job_id",
        arity: JOB_ARITY + RUN_ARITY,
        expected: multiset(expected),
    });

    // Three tables with a filter on the last: join order is the planner's
    // choice, output layout must stay syntactic.
    let mut expected = Vec::new();
    for j in &d.jobs {
        for r in &d.runs {
            if r.1 != Some(j.0) {
                continue;
            }
            for m in &d.machines {
                if r.2 == Some(m.0) && m.1 == "idle" {
                    let mut row = job_values(j);
                    row.extend(run_values(r));
                    row.extend(machine_values(m));
                    expected.push(row);
                }
            }
        }
    }
    out.push(Case {
        sql: "SELECT * FROM jobs JOIN runs ON jobs.job_id = runs.job_id \
              JOIN machines ON runs.machine_id = machines.machine_id \
              WHERE machines.state = 'idle'",
        arity: JOB_ARITY + RUN_ARITY + MACHINE_ARITY,
        expected: multiset(expected),
    });

    // Reversed base table plus an indexed predicate on the joined side.
    let mut expected = Vec::new();
    for r in &d.runs {
        for j in &d.jobs {
            if r.1 == Some(j.0) && j.2 == "running" {
                let mut row = run_values(r);
                row.extend(job_values(j));
                expected.push(row);
            }
        }
    }
    out.push(Case {
        sql: "SELECT * FROM runs JOIN jobs ON runs.job_id = jobs.job_id \
              WHERE jobs.state = 'running'",
        arity: RUN_ARITY + JOB_ARITY,
        expected: multiset(expected),
    });

    // Non-equi ON predicate: must fall back to a nested loop and still agree.
    let mut expected = Vec::new();
    for j in &d.jobs {
        for r in &d.runs {
            if j.0 < r.0 {
                let mut row = job_values(j);
                row.extend(run_values(r));
                expected.push(row);
            }
        }
    }
    out.push(Case {
        sql: "SELECT * FROM jobs JOIN runs ON jobs.job_id < runs.run_id",
        arity: JOB_ARITY + RUN_ARITY,
        expected: multiset(expected),
    });

    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planned execution — including the second run, which hits the plan
    /// cache and reuses hash-join build sides — matches the nested-loop
    /// oracle, as does the de-optimized configuration (syntactic join
    /// order, forced base scans).
    #[test]
    fn planned_joins_match_nested_loop_oracle(d in dataset_strategy()) {
        let db = load(&d);
        for case in cases(&d) {
            let first = db.query(case.sql).unwrap();
            prop_assert_eq!(result_multiset(&first, case.arity), case.expected.clone(), "first run: {}", case.sql);

            let second = db.query(case.sql).unwrap();
            prop_assert_eq!(result_multiset(&second, case.arity), case.expected.clone(), "cached run: {}", case.sql);

            db.set_join_reorder(false);
            db.set_force_scan(true);
            let naive = db.query(case.sql).unwrap();
            db.set_join_reorder(true);
            db.set_force_scan(false);
            prop_assert_eq!(result_multiset(&naive, case.arity), case.expected.clone(), "de-optimized run: {}", case.sql);
        }
    }

    /// A write between two executions of the same (cached) statement
    /// invalidates any reused hash-join build side: the second result
    /// reflects the new row.
    #[test]
    fn cached_builds_never_serve_stale_rows(d in dataset_strategy()) {
        let db = load(&d);
        let sql = "SELECT * FROM jobs JOIN runs ON jobs.job_id = runs.job_id";
        db.query(sql).unwrap();

        let new_job_id = d.jobs.len() as i64 + 100;
        db.execute(&format!(
            "INSERT INTO jobs (job_id, owner, state, runtime) VALUES ({new_job_id}, 'dave', 'idle', 7)"
        )).unwrap();
        db.execute(&format!(
            "INSERT INTO runs (run_id, job_id, machine_id) VALUES ({}, {new_job_id}, NULL)",
            d.runs.len() as i64 + 100
        )).unwrap();

        let after = db.query(sql).unwrap();
        let wanted = Value::Int(new_job_id);
        prop_assert!(
            after.rows.iter().any(|r| r.get(0) == &wanted),
            "freshly inserted join pair must be visible after the write"
        );
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN snapshots
// ---------------------------------------------------------------------------

fn text(v: &Value) -> String {
    match v {
        Value::Text(s) => s.to_string(),
        other => panic!("expected a text value, got {other:?}"),
    }
}

/// Renders EXPLAIN rows as "operator | detail" lines for snapshotting.
fn explain_lines(db: &Database, sql: &str) -> Vec<String> {
    let r = db.query(sql).unwrap();
    assert_eq!(&r.column_names()[..4], &["step", "operator", "detail", "est_rows"]);
    r.rows
        .iter()
        .map(|row| format!("{} | {}", text(row.get(1)), text(row.get(2))))
        .collect()
}

/// A small fixed catalog with deliberately skewed table sizes, analyzed so
/// the planner has real statistics to act on.
fn skewed_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE big (id INT PRIMARY KEY, fk INT, pad TEXT)").unwrap();
    db.execute("CREATE INDEX ON big (fk)").unwrap();
    db.execute("CREATE TABLE mid (id INT PRIMARY KEY, fk INT)").unwrap();
    db.execute("CREATE TABLE tiny (id INT PRIMARY KEY, label TEXT)").unwrap();
    let ins_big = db.prepare("INSERT INTO big (id, fk, pad) VALUES (?, ?, 'x')").unwrap();
    for i in 0..200i64 {
        db.execute_prepared(&ins_big, &[Value::Int(i), Value::Int(i % 40)]).unwrap();
    }
    let ins_mid = db.prepare("INSERT INTO mid (id, fk) VALUES (?, ?)").unwrap();
    for i in 0..40i64 {
        db.execute_prepared(&ins_mid, &[Value::Int(i), Value::Int(i % 4)]).unwrap();
    }
    let ins_tiny = db.prepare("INSERT INTO tiny (id, label) VALUES (?, 'tag')").unwrap();
    for i in 0..4i64 {
        db.execute_prepared(&ins_tiny, &[Value::Int(i)]).unwrap();
    }
    db.execute("ANALYZE").unwrap();
    db
}

#[test]
fn explain_point_lookup_snapshot() {
    let db = skewed_db();
    let lines = explain_lines(&db, "EXPLAIN SELECT * FROM big WHERE id = 3");
    assert_eq!(
        lines,
        vec![
            "Access(big) | point lookup on big.id (unique), pushdown (id = 3)".to_string(),
            "Filter | (id = 3)".to_string(),
            "Output | project *".to_string(),
        ]
    );
}

#[test]
fn explain_reorders_skewed_join_smallest_build_first() {
    let db = skewed_db();
    // Both joins probe columns of `big`, so the planner is free to build
    // either side first; with fresh stats it must pick the 4-row table
    // before the 40-row one.
    let lines = explain_lines(
        &db,
        "EXPLAIN SELECT * FROM big JOIN mid ON big.fk = mid.id JOIN tiny ON big.fk = tiny.id",
    );
    assert_eq!(lines.len(), 4, "access + two joins + output: {lines:?}");
    assert!(lines[0].starts_with("Access(big) | "), "{lines:?}");
    let tiny_pos = lines.iter().position(|l| l.starts_with("HashJoin(tiny)")).unwrap();
    let mid_pos = lines.iter().position(|l| l.starts_with("HashJoin(mid)")).unwrap();
    assert!(
        tiny_pos < mid_pos,
        "smallest build side should come first: {lines:?}"
    );
}

#[test]
fn explain_estimates_shrink_with_fresh_stats() {
    let db = skewed_db();
    let r = db.query("EXPLAIN SELECT * FROM big WHERE fk = 7").unwrap();
    let est_idx = r.column_index("est_rows").unwrap();
    let access_est = match r.rows[0].get(est_idx) {
        Value::Int(i) => *i,
        other => panic!("est_rows should be an int, got {other:?}"),
    };
    // 200 rows over 40 distinct fk values: the estimate must reflect the
    // statistics, not the table size.
    assert!(
        (1..=20).contains(&access_est),
        "selectivity estimate {access_est} should be near 200/40"
    );
}

#[test]
fn explain_analyze_reports_actual_rows() {
    let db = skewed_db();
    let r = db
        .query("EXPLAIN ANALYZE SELECT * FROM big JOIN mid ON big.fk = mid.id")
        .unwrap();
    assert_eq!(
        r.column_names(),
        vec!["step", "operator", "detail", "est_rows", "actual_rows", "time_us"]
    );
    let actual_idx = r.column_index("actual_rows").unwrap();
    let output_row = r.rows.last().unwrap();
    assert_eq!(output_row.get(actual_idx), &Value::Int(200));

    // EXPLAIN without ANALYZE must not have executed anything: same plan,
    // no actuals columns.
    let plain = db.query("EXPLAIN SELECT * FROM big JOIN mid ON big.fk = mid.id").unwrap();
    assert_eq!(plain.columns.len(), 4);
    assert_eq!(plain.rows.len(), r.rows.len());
}

#[test]
fn explain_non_equi_join_uses_nested_loop() {
    let db = skewed_db();
    let lines = explain_lines(&db, "EXPLAIN SELECT * FROM tiny JOIN mid ON tiny.id < mid.fk");
    assert!(
        lines.iter().any(|l| l.starts_with("NestedLoopJoin(mid)")),
        "non-equi ON predicate needs the nested-loop fallback: {lines:?}"
    );
}

#[test]
fn analyze_populates_rel_table_stats() {
    let db = skewed_db();
    let r = db
        .query(
            "SELECT table_name, row_count, stale FROM rel_table_stats \
             WHERE column_name = 'id' ORDER BY table_name",
        )
        .unwrap();
    assert_eq!(r.len(), 3);
    let names: Vec<String> = r.rows.iter().map(|row| text(row.get(0))).collect();
    assert_eq!(names, vec!["big", "mid", "tiny"]);
    assert_eq!(r.rows[0].get(1), &Value::Int(200));
    // Nothing written since ANALYZE: stats are fresh.
    assert_eq!(r.rows[0].get(2), &Value::Int(0));

    db.execute("INSERT INTO big (id, fk, pad) VALUES (999, 0, 'y')").unwrap();
    let r = db
        .query("SELECT stale FROM rel_table_stats WHERE table_name = 'big' AND column_name = 'id'")
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int(1), "write must mark stats stale");
}

// ---------------------------------------------------------------------------
// Subquery semantics
// ---------------------------------------------------------------------------

fn subquery_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (x INT, note TEXT)").unwrap();
    db.execute("INSERT INTO t (x, note) VALUES (1, 'one')").unwrap();
    db.execute("INSERT INTO t (x, note) VALUES (2, 'two')").unwrap();
    db.execute("INSERT INTO t (x, note) VALUES (NULL, 'null')").unwrap();
    db.execute("CREATE TABLE s (v INT)").unwrap();
    db
}

#[test]
fn in_empty_subquery_matches_nothing() {
    let db = subquery_db();
    let r = db.query("SELECT * FROM t WHERE x IN (SELECT v FROM s)").unwrap();
    assert!(r.is_empty());
    // NOT IN over an empty set is vacuously true for non-NULL x…
    let r = db.query("SELECT * FROM t WHERE NOT x IN (SELECT v FROM s)").unwrap();
    assert_eq!(r.len(), 2, "x = NULL stays filtered: NOT NULL is NULL");
}

#[test]
fn in_subquery_with_null_keeps_three_valued_logic() {
    let db = subquery_db();
    db.execute("INSERT INTO s (v) VALUES (1)").unwrap();
    db.execute("INSERT INTO s (v) VALUES (NULL)").unwrap();

    // x = 1 matches; x = 2 compares (2 IN (1, NULL)) → NULL → filtered;
    // x = NULL → NULL → filtered.
    let r = db.query("SELECT note FROM t WHERE x IN (SELECT v FROM s)").unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows[0].get(0), &Value::Text("one".into()));

    // NOT IN with a NULL in the set can never be TRUE: every row filtered.
    let r = db.query("SELECT * FROM t WHERE NOT x IN (SELECT v FROM s)").unwrap();
    assert!(r.is_empty(), "NULL in the IN-list poisons NOT IN");
}

#[test]
fn scalar_subquery_empty_yields_null_comparison() {
    let db = subquery_db();
    let r = db.query("SELECT * FROM t WHERE x > (SELECT v FROM s)").unwrap();
    assert!(r.is_empty(), "comparison against empty scalar subquery is NULL");
}

#[test]
fn scalar_subquery_single_row_filters() {
    let db = subquery_db();
    db.execute("INSERT INTO s (v) VALUES (1)").unwrap();
    let r = db.query("SELECT note FROM t WHERE x > (SELECT MAX(v) FROM s)").unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows[0].get(0), &Value::Text("two".into()));
}

#[test]
fn scalar_subquery_with_multiple_rows_errors() {
    let db = subquery_db();
    db.execute("INSERT INTO s (v) VALUES (1)").unwrap();
    db.execute("INSERT INTO s (v) VALUES (2)").unwrap();
    let err = db.query("SELECT * FROM t WHERE x = (SELECT v FROM s)").unwrap_err();
    assert!(err.to_string().contains("scalar subquery"), "{err}");
}

#[test]
fn in_subquery_composes_with_joins() {
    let db = skewed_db();
    let r = db
        .query(
            "SELECT COUNT(*) FROM big JOIN mid ON big.fk = mid.id \
             WHERE mid.fk IN (SELECT id FROM tiny WHERE id < 2)",
        )
        .unwrap();
    // mid.fk = id % 4 ∈ {0, 1} keeps half of mid's 40 rows; each mid row
    // matches 5 big rows.
    assert_eq!(r.scalar_int().unwrap(), 100);
}
