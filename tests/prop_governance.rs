//! Property tests of the governance layer's two safety contracts:
//!
//! 1. **Cancellation is transactional.** Whatever row-check boundary a
//!    deadline or token fires at, an autocommit write either applies fully
//!    or not at all — never a partially updated table.
//! 2. **Typed errors survive the wire.** `Error::Timeout` (both kinds) and
//!    `Error::ResourceExhausted` round-trip a response frame with message,
//!    variant and retry class intact.

use proptest::prelude::*;
use relstore::{Database, Error, Governance, TimeoutKind, Value};
use std::time::Duration;
use wire::Response;

fn counter_db(rows: i64) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE counters (id INT PRIMARY KEY, n INT)").unwrap();
    let ins = db.prepare("INSERT INTO counters VALUES (?, ?)").unwrap();
    db.session()
        .execute_batch(&ins, (0..rows).map(|id| (id, 0i64)))
        .unwrap();
    db
}

fn column_sum(db: &Database) -> i64 {
    db.session()
        .query_scalars::<i64, _, _>("SELECT SUM(n) AS s FROM counters", ())
        .unwrap()[0]
}

proptest! {
    /// An expired deadline may fire at *any* row-check boundary of an
    /// autocommit multi-row UPDATE (the boundary position is driven by
    /// `check_interval`); whichever one it hits, the table afterwards holds
    /// either the full update or none of it.
    #[test]
    fn cancelled_autocommit_update_is_all_or_nothing(
        rows in 1i64..40,
        check_interval in 1u32..64,
    ) {
        let db = counter_db(rows);
        let gov = Governance {
            deadline: Some(Duration::ZERO),
            check_interval: Some(check_interval),
            ..Governance::default()
        };
        match db.execute_governed("UPDATE counters SET n = n + 1", &gov) {
            // The statement finished before any check boundary was crossed:
            // every row must carry the increment.
            Ok(_) => prop_assert_eq!(column_sum(&db), rows),
            Err(Error::Timeout { kind: TimeoutKind::Statement, .. }) => {
                // Cancelled mid-write: the automatic rollback must leave no
                // partial increment behind.
                prop_assert_eq!(column_sum(&db), 0);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
        db.check_consistency().unwrap();
    }

    /// The same contract for a cancelled multi-row INSERT: either every
    /// VALUES row landed or the table is untouched.
    #[test]
    fn cancelled_autocommit_insert_is_all_or_nothing(
        extra in 1i64..20,
        check_interval in 1u32..32,
    ) {
        let db = counter_db(5);
        let values: Vec<String> = (0..extra).map(|i| format!("({}, 1)", 100 + i)).collect();
        let sql = format!("INSERT INTO counters VALUES {}", values.join(", "));
        let gov = Governance {
            deadline: Some(Duration::ZERO),
            check_interval: Some(check_interval),
            ..Governance::default()
        };
        let len = match db.execute_governed(&sql, &gov) {
            Ok(_) => 5 + extra as usize,
            Err(Error::Timeout { .. }) => 5,
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        };
        prop_assert_eq!(db.table_len("counters").unwrap(), len);
        db.check_consistency().unwrap();
    }

    /// The row budget caps *materialized result rows* exactly: a governed
    /// SELECT succeeds iff its result fits the cap, and a refusal is typed
    /// `ResourceExhausted` — never a silent truncation of the result set.
    #[test]
    fn row_budget_trips_exactly_at_the_cap(
        rows in 1i64..40,
        cap in 1u64..40,
    ) {
        let db = counter_db(rows);
        let gov = Governance {
            max_rows: Some(cap),
            ..Governance::default()
        };
        match db.query_governed("SELECT * FROM counters", &gov) {
            Ok(result) => {
                prop_assert!(rows as u64 <= cap, "{} rows slipped past a cap of {}", rows, cap);
                prop_assert_eq!(result.rows.len() as i64, rows, "no silent truncation");
            }
            Err(Error::ResourceExhausted(_)) => prop_assert!(rows as u64 > cap),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
        db.check_consistency().unwrap();
    }

    /// Governance errors cross the wire as themselves: variant, message and
    /// retry class all intact, for any message content.
    #[test]
    fn governance_errors_round_trip_the_wire(msg in "\\PC{0,60}", which in 0..3u8) {
        let err = match which {
            0 => Error::statement_timeout(msg.clone()),
            1 => Error::lock_wait_timeout(msg.clone()),
            _ => Error::resource_exhausted(msg.clone()),
        };
        let decoded = match Response::decode(&Response::Err(err.clone()).encode()).unwrap() {
            Response::Err(d) => d,
            other => return Err(TestCaseError::fail(format!("expected Err, got {other:?}"))),
        };
        prop_assert_eq!(decoded.class(), err.class());
        prop_assert_eq!(decoded.is_retryable(), err.is_retryable());
        prop_assert_eq!(decoded.to_string(), err.to_string());
        match (&decoded, &err) {
            (Error::Timeout { kind: a, .. }, Error::Timeout { kind: b, .. }) => {
                prop_assert_eq!(a, b, "the timeout kind survives via the class byte");
            }
            (Error::ResourceExhausted(a), Error::ResourceExhausted(b)) => {
                prop_assert_eq!(a, b);
            }
            _ => prop_assert!(false, "variant changed across the wire: {decoded:?}"),
        }
    }

    /// Deadline millis survive the request frame for any value, including
    /// the absent case.
    #[test]
    fn request_deadlines_round_trip(deadline_seed in 0u64..u64::MAX) {
        let deadline_ms = (deadline_seed % 5 != 0).then_some((deadline_seed >> 32) as u32);
        let req = wire::Request::Query {
            stmt: wire::StmtRef::Sql("SELECT 1".into()),
            params: vec![Value::Int(deadline_seed as i64)],
            deadline_ms,
        };
        let decoded = wire::Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(decoded, req);
    }
}
