//! End-to-end tests of the network subsystem: the appserver's container
//! served over TCP, MVCC invariants preserved across the wire, rollback on
//! dropped connections, pooling, admission control and graceful shutdown.

use cluster_sim::{ClusterSpec, JobSpec, SimDuration, SimTime};
use condorj2::{CondorJ2Config, CondorJ2Simulation};
use relstore::{Database, Error, FromRow, RowView};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wire::{serve, serve_with, Client, ClientPool, ServerConfig};

#[derive(Debug, PartialEq)]
struct StateCount {
    state: Option<String>,
    n: i64,
}

impl FromRow for StateCount {
    fn from_row(row: &RowView<'_>) -> relstore::Result<Self> {
        Ok(StateCount {
            state: row.get("state")?,
            n: row.get("n")?,
        })
    }
}

/// The paper's scenario, remote: drive a CondorJ2 pool (CAS + appserver
/// container over one database) locally, then serve that same database over
/// TCP. The operational queries an administrator would run must return the
/// identical results through the embedded engine and through the wire — and
/// typed `FromRow` decoding works unchanged on both transports.
#[test]
fn appserver_container_scenario_matches_over_the_wire() {
    let spec = ClusterSpec::uniform_fast(6, 2);
    let mut pool = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, 7);
    pool.submit(JobSpec::fixed_batch(40, SimDuration::from_secs(45), "astro"));
    pool.submit(JobSpec::fixed_batch(20, SimDuration::from_secs(90), "bio"));
    pool.run_until(SimTime::from_mins(4));

    let db = Arc::clone(pool.cas().database());
    let server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let queries = [
        "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state ORDER BY state",
        "SELECT owner, COUNT(*) AS finished FROM job_history GROUP BY owner ORDER BY owner",
        "SELECT machine_id, state FROM machines ORDER BY machine_id",
        "SELECT name, value FROM config ORDER BY name",
        "SELECT COUNT(*) AS running_now FROM runs",
    ];
    for sql in queries {
        let local = db.query(sql).unwrap();
        let remote = client.query(sql, ()).unwrap();
        assert_eq!(remote, local, "remote result diverged for: {sql}");
    }

    // Typed decoding is transport-agnostic: the same FromRow struct decodes
    // the local session's rows and the remote client's rows.
    let sql = "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state ORDER BY state";
    let local: Vec<StateCount> = db.session().query_as(sql, ()).unwrap();
    let remote: Vec<StateCount> = client.query_as(sql, ()).unwrap();
    assert_eq!(remote, local);
    assert!(!remote.is_empty(), "the simulation must have produced jobs");

    // Writes flow the other way too: a remote DDL + batched insert is
    // immediately visible to the embedded engine.
    client
        .execute(
            "CREATE TABLE net_audit (id INT PRIMARY KEY, note TEXT)",
            (),
        )
        .unwrap();
    let ins = client.prepare("INSERT INTO net_audit VALUES (?, ?)").unwrap();
    let n = client
        .execute_batch(ins, (0..16i64).map(|i| (i, format!("entry-{i}"))))
        .unwrap();
    assert_eq!(n, 16);
    assert_eq!(db.table_len("net_audit").unwrap(), 16);
    let notes: Vec<String> = db
        .session()
        .query_scalars("SELECT note FROM net_audit WHERE id < ? ORDER BY id", (2i64,))
        .unwrap();
    assert_eq!(notes, vec!["entry-0".to_string(), "entry-1".to_string()]);

    // The server counted its transport work.
    let stats = server.stats();
    assert!(stats.net_bytes_in > 0);
    assert!(stats.net_bytes_out > 0);
    assert!(stats.frames_decoded > 0);
    assert!(stats.active_connections >= 1);

    drop(client);
    server.shutdown();
    db.check_consistency().unwrap();
}

/// The MVCC acceptance property, end to end over the wire: N client threads
/// run point selects over loopback against one continuously committing
/// writer (itself remote) and finish with **zero** reader errors.
#[test]
fn remote_readers_never_fail_against_a_committing_writer() {
    const ROWS: i64 = 500;
    const READERS: usize = 4;
    const ITERS: u64 = 200;

    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, owner TEXT NOT NULL, runtime_ms INT)")
        .unwrap();
    let ins = db.prepare("INSERT INTO jobs VALUES (?, ?, 0)").unwrap();
    db.session()
        .execute_batch(&ins, (0..ROWS).map(|i| (i, format!("user{}", i % 7))))
        .unwrap();

    let server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);
    let reader_errors = AtomicU64::new(0);
    let writer_commits = AtomicU64::new(0);

    std::thread::scope(|s| {
        let mut readers = Vec::new();
        for t in 0..READERS {
            let (stop, reader_errors) = (&stop, &reader_errors);
            readers.push(s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let select = client
                    .prepare("SELECT owner, runtime_ms FROM jobs WHERE job_id = ?")
                    .unwrap();
                for i in 0..ITERS {
                    let id = ((t as u64 * 131 + i * 17) % ROWS as u64) as i64;
                    match client.query(select, (id,)) {
                        Ok(r) => assert_eq!(r.len(), 1, "row {id} must exist"),
                        Err(_) => {
                            reader_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let _ = stop;
            }));
        }
        let writer = {
            let (stop, writer_commits) = (&stop, &writer_commits);
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let update = client
                    .prepare("UPDATE jobs SET runtime_ms = runtime_ms + 1 WHERE job_id = ?")
                    .unwrap();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    client
                        .execute(update, ((i % ROWS as u64) as i64,))
                        .expect("the only writer cannot conflict");
                    writer_commits.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        };
        for handle in readers {
            handle.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });

    assert_eq!(
        reader_errors.load(Ordering::Relaxed),
        0,
        "MVCC readers over the wire must never fail against a writer"
    );
    assert!(
        writer_commits.load(Ordering::Relaxed) > 0,
        "the writer must actually have been committing during the reads"
    );
    server.shutdown();
    db.check_consistency().unwrap();
}

/// A connection that dies mid-transaction must roll back server-side and
/// release its locks — the network analogue of dropping an RAII guard.
#[test]
fn dropped_connection_mid_transaction_rolls_back() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
    db.execute("INSERT INTO jobs VALUES (1, 'idle')").unwrap();
    let server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();

    let mut dying = Client::connect(server.local_addr()).unwrap();
    dying.begin().unwrap();
    let n = dying
        .execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("held", 1i64))
        .unwrap()
        .affected();
    assert_eq!(n, 1);
    assert!(dying.in_transaction());
    // The client vanishes without committing (crash, network partition...).
    drop(dying);

    // The server rolls back as soon as it observes the close; a second
    // writer acquires the lock within a few retries.
    let mut other = Client::connect(server.local_addr()).unwrap();
    other
        .with_retries(50, |c| {
            c.execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("done", 1i64))
        })
        .unwrap();
    let state: Vec<String> = other
        .query_scalars("SELECT state FROM jobs WHERE job_id = 1", ())
        .unwrap();
    assert_eq!(state, vec!["done".to_string()], "the dropped txn's update is gone");

    // The explicit RAII guard behaves the same over the wire.
    {
        let mut txn = other.transaction().unwrap();
        txn.execute("DELETE FROM jobs", ()).unwrap();
        // Dropped without commit.
    }
    assert_eq!(db.table_len("jobs").unwrap(), 1);
    drop(other);
    server.shutdown();
}

/// Pool behaviour: healthy connections are reused, broken or mid-transaction
/// ones are discarded, and `with_retries` takes a fresh connection per
/// attempt. Admission control turns away clients beyond the limit with a
/// retryable busy handshake.
#[test]
fn pool_reuse_discard_and_admission_control() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    let server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let pool = ClientPool::new(server.local_addr().to_string(), 2);

    // A clean checkout/checkin is reused, not re-dialed.
    {
        let mut conn = pool.get().unwrap();
        conn.execute("UPDATE t SET v = v + 1 WHERE id = 1", ()).unwrap();
    }
    assert_eq!(pool.open_connections(), 1);
    {
        let mut conn = pool.get().unwrap();
        let v: Vec<i64> = conn.query_scalars("SELECT v FROM t WHERE id = 1", ()).unwrap();
        assert_eq!(v, vec![1]);
    }
    assert_eq!(pool.open_connections(), 1, "the healthy connection was reused");

    // A connection returned mid-transaction is discarded — and the server
    // rolls its transaction back, releasing the table lock for others.
    {
        let mut conn = pool.get().unwrap();
        conn.begin().unwrap();
        conn.execute("UPDATE t SET v = 99 WHERE id = 1", ()).unwrap();
        // Returned to the pool with the transaction still open.
    }
    assert_eq!(pool.open_connections(), 0, "a mid-transaction connection is discarded");

    // The same holds when the transaction was opened through SQL text in an
    // unusual spelling: the server's Ack carries the post-statement
    // transaction state, so the client does not depend on parsing the SQL.
    {
        let mut conn = pool.get().unwrap();
        conn.execute("BEGIN;", ()).unwrap();
        assert!(conn.in_transaction(), "txn state comes from the server's Ack");
        conn.execute("UPDATE t SET v = 77 WHERE id = 1", ()).unwrap();
    }
    assert_eq!(pool.open_connections(), 0, "SQL-text BEGIN; still marks the connection");
    pool.with_retries(50, |c| {
        c.execute("UPDATE t SET v = 2 WHERE id = 1", ())
    })
    .unwrap();
    let mut conn = pool.get().unwrap();
    let v: Vec<i64> = conn.query_scalars("SELECT v FROM t WHERE id = 1", ()).unwrap();
    assert_eq!(v, vec![2], "the abandoned transaction rolled back");
    drop(conn);

    // Admission control: with max_connections = 1 a second concurrent
    // client is refused with a *retryable* busy handshake.
    let small = serve_with(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let first = Client::connect(small.local_addr()).unwrap();
    let err = Client::connect(small.local_addr()).unwrap_err();
    assert!(err.is_retryable(), "admission rejection should invite a retry: {err}");
    assert!(matches!(err, Error::Busy(_)));
    drop(first);
    small.shutdown();
    server.shutdown();
}

/// Graceful shutdown: in-flight statements finish and their responses
/// arrive; afterwards the port stops answering.
#[test]
fn shutdown_drains_in_flight_statements() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    let ins = db.prepare("INSERT INTO t VALUES (?)").unwrap();
    db.session()
        .execute_batch(&ins, (0..2000i64).map(|i| (i,)))
        .unwrap();
    let server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let answered = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut seen = 0usize;
        // Keep issuing queries until the server goes away; every response
        // that does arrive must be complete and correct.
        loop {
            match client.query("SELECT COUNT(*) FROM t", ()) {
                Ok(r) => {
                    assert_eq!(r.scalar_int(), Some(2000));
                    seen += 1;
                }
                Err(e) => {
                    assert!(matches!(e, Error::Net(_)), "unexpected failure mode: {e}");
                    break;
                }
            }
        }
        seen
    });
    // Let the client get some requests through, then shut down under it.
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.shutdown();
    let seen = answered.join().unwrap();
    assert!(seen > 0, "the client must have been served before shutdown");
    // The port no longer accepts relstore connections.
    assert!(Client::connect(addr).is_err());
}

/// A client that goes silent at a frame boundary is reaped after
/// `idle_timeout`: its open transaction rolls back, its worker thread frees
/// up for other connections, and the pool recovers transparently — the
/// closed socket surfaces as a transport error that `with_retries`
/// reclassifies as retryable, so the next attempt rides a fresh connection.
#[test]
fn idle_connections_are_reaped_and_the_pool_recovers() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    // One worker: until the idle connection is reaped, nobody else gets
    // served, so the second client succeeding proves the worker was freed.
    let server = serve_with(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            poll_interval: std::time::Duration::from_millis(5),
            idle_timeout: std::time::Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let pool = ClientPool::new(server.local_addr().to_string(), 1);
    {
        let mut conn = pool.get().unwrap();
        conn.begin().unwrap();
        conn.execute("UPDATE t SET v = 99 WHERE id = 1", ()).unwrap();
        // Hold the connection open and idle, past the idle timeout, while
        // it still owns the table lock and the only worker.
        std::thread::sleep(std::time::Duration::from_millis(300));
        // The server has reaped the connection; the next request on it
        // fails with a transport error and marks the client broken.
        let err = conn
            .query("SELECT v FROM t WHERE id = 1", ())
            .unwrap_err();
        assert!(matches!(err, Error::Net(_)), "expected a transport error: {err}");
        assert!(conn.is_broken());
        // Dropped here: the pool discards it instead of reusing it.
    }
    assert_eq!(pool.open_connections(), 0, "the reaped connection was discarded");

    // The reap rolled the transaction back (update gone, lock released) and
    // freed the worker: a fresh pooled connection is served immediately.
    pool.with_retries(10, |c| c.execute("UPDATE t SET v = 1 WHERE id = 1", ()))
        .unwrap();
    let mut conn = pool.get().unwrap();
    let v: Vec<i64> = conn.query_scalars("SELECT v FROM t WHERE id = 1", ()).unwrap();
    assert_eq!(v, vec![1], "the reaped connection's transaction rolled back");
    drop(conn);
    server.shutdown();
}

/// A peer that starts a frame and then stalls cannot pin a worker: after
/// `read_timeout` without progress the server fails the connection and the
/// worker moves on to the next client.
#[test]
fn stalled_mid_frame_client_cannot_pin_the_worker() {
    use std::io::Write;

    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let server = serve_with(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            poll_interval: std::time::Duration::from_millis(5),
            read_timeout: std::time::Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // A hand-rolled client: complete the handshake, then announce a frame
    // and send only part of it, stalling forever mid-frame.
    let mut stalled = std::net::TcpStream::connect(server.local_addr()).unwrap();
    wire::protocol::write_hello(&mut stalled).unwrap();
    wire::protocol::read_handshake_response(&mut stalled).unwrap();
    stalled.write_all(&64u32.to_le_bytes()).unwrap(); // frame of 64 bytes...
    stalled.write_all(&[1, 2, 3]).unwrap(); // ...of which only 3 arrive
    stalled.flush().unwrap();

    // The single worker is pinned until the stall timeout fires; then this
    // well-behaved client gets served. Bound the whole wait so a regression
    // fails the test rather than hanging it.
    let addr = server.local_addr();
    let served = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let n: Vec<i64> = client.query_scalars("SELECT id FROM t", ()).unwrap();
        assert_eq!(n, vec![1]);
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !served.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "stalled client pinned the worker past the read timeout"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    served.join().unwrap();
    drop(stalled);
    server.shutdown();
}

/// EXPLAIN is served through the ordinary query path, so a plan rendered
/// over TCP must be byte-identical to the embedded one — and ANALYZE issued
/// by a remote client refreshes the same statistics the embedded planner
/// reads.
#[test]
fn explain_and_analyze_are_transport_agnostic() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE big (id INT PRIMARY KEY, fk INT)").unwrap();
    db.execute("CREATE INDEX ON big (fk)").unwrap();
    db.execute("CREATE TABLE tiny (id INT PRIMARY KEY, label TEXT)").unwrap();
    for i in 0..120i64 {
        db.execute(&format!("INSERT INTO big VALUES ({i}, {})", i % 6)).unwrap();
    }
    for i in 0..6i64 {
        db.execute(&format!("INSERT INTO tiny VALUES ({i}, 'tag-{i}')")).unwrap();
    }

    let server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A remote ANALYZE populates the catalog statistics the embedded
    // planner consults.
    client.execute("ANALYZE", ()).unwrap();
    let stats = db
        .query("SELECT table_name, row_count FROM rel_table_stats WHERE column_name = 'id' ORDER BY table_name")
        .unwrap();
    assert_eq!(stats.len(), 2, "remote ANALYZE must cover both tables");

    let plans = [
        "EXPLAIN SELECT * FROM big WHERE id = 7",
        "EXPLAIN SELECT * FROM big JOIN tiny ON big.fk = tiny.id WHERE tiny.label = 'tag-3'",
        "EXPLAIN SELECT fk, COUNT(*) FROM big GROUP BY fk ORDER BY fk LIMIT 3",
    ];
    for sql in plans {
        let local = db.query(sql).unwrap();
        let remote = client.query(sql, ()).unwrap();
        assert_eq!(remote, local, "plan diverged over the wire for: {sql}");
    }

    // EXPLAIN ANALYZE actually executes, so wall times differ run to run;
    // everything else — shape, operators, estimates, actual row counts —
    // must agree.
    let sql = "EXPLAIN ANALYZE SELECT * FROM big JOIN tiny ON big.fk = tiny.id";
    let local = db.query(sql).unwrap();
    let remote = client.query(sql, ()).unwrap();
    assert_eq!(remote.column_names(), local.column_names());
    assert_eq!(
        remote.column_names(),
        vec!["step", "operator", "detail", "est_rows", "actual_rows", "time_us"]
    );
    assert_eq!(remote.len(), local.len());
    for (r, l) in remote.rows.iter().zip(local.rows.iter()) {
        for col in 0..5 {
            assert_eq!(r.get(col), l.get(col), "EXPLAIN ANALYZE diverged at column {col}");
        }
    }

    // The statistics table itself ships over the wire like any other.
    let sql = "SELECT * FROM rel_table_stats ORDER BY table_name, column_name";
    assert_eq!(client.query(sql, ()).unwrap(), db.query(sql).unwrap());

    server.shutdown();
}
