//! Property-based tests of the observability subsystem: bucket arithmetic
//! covers the whole `u64` range without gaps, quantile estimates stay
//! within one power-of-two bucket of the true order statistic, the
//! statement-profile table is bounded by the statement-cache LRU, and the
//! statement/histogram accounting invariant survives arbitrary workloads
//! with failures mixed in.

use proptest::prelude::*;
use relstore::obs::hist::{bucket_high, bucket_index, bucket_low, LatencyHistogram, BUCKETS};
use relstore::Database;

proptest! {
    /// The bucket function is monotone, and every duration lands inside
    /// its own bucket's bounds.
    #[test]
    fn bucket_index_is_monotone_and_self_consistent(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        prop_assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for n in [a, b, u64::MAX] {
            let i = bucket_index(n);
            prop_assert!(i < BUCKETS);
            prop_assert!(bucket_low(i) <= n || n == 0);
            prop_assert!(n <= bucket_high(i));
        }
    }

    /// Quantile estimates land in the same power-of-two bucket as the true
    /// order statistic, never exceed the true maximum, and `q = 1.0` is the
    /// exact maximum.
    #[test]
    fn quantile_is_within_one_bucket_of_truth(
        samples in prop::collection::vec(1u64..2_000_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = LatencyHistogram::default();
        for &s in &samples {
            h.record(s);
        }
        let mut samples = samples;
        samples.sort_unstable();
        let snap = h.snapshot();
        let est = snap.quantile(q).unwrap();
        prop_assert!(est <= *samples.last().unwrap());
        prop_assert_eq!(snap.quantile(1.0).unwrap(), *samples.last().unwrap());

        // The true order statistic at the same rank the estimator targets.
        let count = samples.len() as u64;
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let truth = samples[(target - 1) as usize];
        prop_assert_eq!(
            bucket_index(est.max(1)), bucket_index(truth),
            "estimate {} vs true order statistic {}", est, truth
        );
    }

    /// `statement_profiles` (and therefore `rel_statements`) is bounded by
    /// the statement-cache LRU no matter how many distinct statements run:
    /// hot entries keep profiling, cold ones age out.
    #[test]
    fn profile_table_is_bounded_by_the_statement_cache(extra in 1usize..40) {
        let db = Database::new();
        db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY)").unwrap();
        let cap = 256; // STMT_CACHE_CAPACITY
        for i in 0..(cap + extra) as i64 {
            db.query(&format!("SELECT job_id FROM jobs WHERE job_id = {i}")).unwrap();
        }
        let profiles = db.statement_profiles();
        prop_assert!(profiles.len() <= cap, "{} profiles exceed the LRU cap", profiles.len());
        // The newest statement is always resident; calls were recorded.
        let last = format!("SELECT job_id FROM jobs WHERE job_id = {}", cap + extra - 1);
        let hit = profiles.iter().find(|p| &*p.sql == last.as_str());
        prop_assert!(hit.is_some_and(|p| p.calls == 1));
    }

    /// Arbitrary workloads — inserts, point reads, duplicate-key failures,
    /// missing-table failures — preserve the accounting invariant: every
    /// counted statement has exactly one histogram sample.
    #[test]
    fn histogram_totals_match_statements_executed(ops in prop::collection::vec(0u8..5, 1..60)) {
        let db = Database::new();
        db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY)").unwrap();
        for (i, op) in ops.iter().enumerate() {
            let i = i as i64;
            match op {
                0 => { db.execute(&format!("INSERT INTO jobs VALUES ({i})")).unwrap(); }
                1 => { db.query("SELECT COUNT(*) AS n FROM jobs").unwrap(); }
                2 => { let _ = db.execute("INSERT INTO jobs VALUES (0)"); } // dup after first
                3 => { db.query("SELECT * FROM missing").unwrap_err(); }
                _ => { db.execute(&format!("DELETE FROM jobs WHERE job_id = {i}")).unwrap(); }
            }
        }
        prop_assert_eq!(
            db.obs().histograms.statement_total(),
            db.stats().statements_executed
        );
    }
}
