//! MVCC snapshot-isolation tests: no dirty reads, repeatable reads inside a
//! transaction, zero reader lock conflicts under a committing writer, and
//! vacuum shrinking version chains once the snapshots pinning them close.

use proptest::prelude::*;
use relstore::{Database, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A table of (a, b) pairs with the invariant `a == b` in every committed
/// state. The writer breaks the invariant *inside* its transactions (two
/// separate UPDATEs), so any dirty read — or any read straddling a commit —
/// shows up as `a != b`.
const PAIRS: i64 = 16;

fn pairs_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE pairs (id INT PRIMARY KEY, a INT, b INT)").unwrap();
    let ins = db.prepare("INSERT INTO pairs VALUES (?, ?, ?)").unwrap();
    db.session()
        .execute_batch(&ins, (0..PAIRS).map(|id| (id, 0i64, 0i64)))
        .unwrap();
    db
}

/// One writer step: bump `a` then `b` of one row in a transaction that
/// either commits or aborts. The intermediate state (`a` bumped, `b` not
/// yet) exists only inside the transaction.
fn write_step(db: &Database, id: i64, delta: i64, commit: bool) {
    db.session()
        .with_retries(64, |s| {
            let txn = s.transaction()?;
            txn.execute("UPDATE pairs SET a = a + ? WHERE id = ?", (delta, id))?;
            txn.execute("UPDATE pairs SET b = b + ? WHERE id = ?", (delta, id))?;
            if commit {
                txn.commit()?;
            }
            Ok(())
        })
        .expect("writer step failed");
}

#[test]
fn no_dirty_reads_and_zero_reader_conflicts_under_a_committing_writer() {
    let db = pairs_db();
    let done = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        let db = &db;
        let done = &done;
        let reads = &reads;
        // 4 readers exercising every read path: autocommit point selects,
        // pipelined batches, and in-transaction (repeatable-read) selects.
        // Not a single read may fail — the reader/writer LockConflict path
        // no longer exists.
        for t in 0..4i64 {
            s.spawn(move || {
                let point = db.prepare("SELECT a, b FROM pairs WHERE id = ?").unwrap();
                let mut i = 0i64;
                while !done.load(Ordering::Relaxed) {
                    let id = (t + i) % PAIRS;
                    // Autocommit read: committed pairs only.
                    let (a, b) = db
                        .session()
                        .query_one::<(i64, i64), _, _>(&point, (id,))
                        .expect("autocommit reader hit an error")
                        .expect("row must exist");
                    assert_eq!(a, b, "dirty or torn read on row {id}");

                    // Batched read under one snapshot.
                    for r in db
                        .session()
                        .query_batch(&point, [(id,), ((id + 1) % PAIRS,)])
                        .expect("batched reader hit an error")
                    {
                        let view = r.view(0).expect("row must exist");
                        let (a, b): (i64, i64) =
                            (view.get("a").unwrap(), view.get("b").unwrap());
                        assert_eq!(a, b, "batched dirty read");
                    }

                    // Repeatable reads: the same query twice inside one
                    // transaction returns identical rows even while the
                    // writer commits in between.
                    let txn = db.transaction();
                    let first = txn.query(&point, (id,)).expect("in-txn read failed");
                    std::thread::yield_now();
                    let second = txn.query(&point, (id,)).expect("in-txn re-read failed");
                    assert_eq!(first, second, "non-repeatable read on row {id}");
                    txn.commit().unwrap();

                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        s.spawn(move || {
            for i in 0..400i64 {
                // Aborting every third transaction exercises version-chain
                // rollback under concurrent readers.
                write_step(db, (i * 5) % PAIRS, 1 + i % 3, i % 3 != 2);
            }
            done.store(true, Ordering::Relaxed);
        });
    });
    assert!(reads.load(Ordering::Relaxed) > 0, "readers must make progress");
    db.check_consistency().unwrap();
    // Steps 2, 5, ..., 398 aborted: 133 rollbacks ran under the readers.
    assert_eq!(db.stats().aborts, 133, "every third step aborted");
}

#[test]
fn repeatable_reads_span_a_concurrent_committed_write() {
    let db = pairs_db();
    let reader = db.transaction();
    let before = reader
        .query("SELECT a, b FROM pairs WHERE id = 0", ())
        .unwrap();

    // A whole writer transaction begins, updates the row and commits while
    // the reader transaction stays open.
    db.execute("UPDATE pairs SET a = 41, b = 41 WHERE id = 0").unwrap();

    // The reader's snapshot predates the writer: it keeps seeing the old
    // row, by point lookup and by scan.
    let after = reader
        .query("SELECT a, b FROM pairs WHERE id = 0", ())
        .unwrap();
    assert_eq!(before, after, "snapshot must not move mid-transaction");
    let sum: i64 = reader
        .query_one::<(i64,), _, _>("SELECT SUM(a) AS s FROM pairs", ())
        .unwrap()
        .unwrap()
        .0;
    assert_eq!(sum, 0, "scan sees the snapshot state too");
    reader.commit().unwrap();

    // A new read observes the committed write.
    let r = db.query("SELECT a FROM pairs WHERE id = 0").unwrap();
    assert_eq!(r.first_value("a"), Some(&Value::Int(41)));
}

#[test]
fn vacuum_shrinks_chains_once_the_pinning_snapshot_closes() {
    let db = pairs_db();

    // An open reader transaction pins the pre-update versions.
    let reader = db.transaction();
    let pinned = reader.query("SELECT a FROM pairs WHERE id = 0", ()).unwrap();

    for i in 1..=10i64 {
        db.execute(&format!("UPDATE pairs SET a = {i}, b = {i} WHERE id = 0")).unwrap();
    }
    assert_eq!(db.table_max_chain("pairs").unwrap(), 11, "10 updates grow the chain");
    assert!(db.stats().max_version_chain >= 11);

    // Vacuum now must retain everything the reader's snapshot can reach.
    db.vacuum_all();
    assert_eq!(
        db.table_max_chain("pairs").unwrap(),
        11,
        "an open snapshot pins the whole chain"
    );
    let still = reader.query("SELECT a FROM pairs WHERE id = 0", ()).unwrap();
    assert_eq!(pinned, still);
    reader.commit().unwrap();

    // With the snapshot closed, the checkpoint's vacuum pass collapses the
    // chain back to a single committed version per row.
    let s0 = db.stats();
    db.checkpoint().unwrap();
    assert_eq!(db.table_max_chain("pairs").unwrap(), 1);
    assert_eq!(
        db.table_versions("pairs").unwrap(),
        db.table_len("pairs").unwrap(),
        "exactly one version per live row"
    );
    assert_eq!(db.stats().delta_since(&s0).versions_vacuumed, 10);
    db.check_consistency().unwrap();

    // Recovery from the WAL carries committed versions only.
    let recovered = Database::recover_from(db.snapshot_wal()).unwrap();
    assert_eq!(recovered.table_max_chain("pairs").unwrap(), 1);
    let r = recovered.query("SELECT a FROM pairs WHERE id = 0").unwrap();
    assert_eq!(r.first_value("a"), Some(&Value::Int(10)));
}

#[test]
fn vacuum_after_few_row_churn_visits_only_dirty_chains() {
    // A big table where only a handful of rows churn: the dirty-chain list
    // keeps the vacuum pass proportional to the churn, not the table.
    let db = Database::new();
    db.execute("CREATE TABLE wide (id INT PRIMARY KEY, v INT)").unwrap();
    let ins = db.prepare("INSERT INTO wide VALUES (?, 0)").unwrap();
    db.session()
        .execute_batch(&ins, (0..2_000i64).map(|i| (i,)))
        .unwrap();
    assert_eq!(db.table_dirty_chains("wide").unwrap(), 0);

    let upd = db.prepare("UPDATE wide SET v = v + 1 WHERE id = ?").unwrap();
    for id in [3i64, 700, 1_999] {
        db.session().execute(&upd, (id,)).unwrap();
    }
    db.execute("DELETE FROM wide WHERE id = 42").unwrap();
    assert_eq!(
        db.table_dirty_chains("wide").unwrap(),
        4,
        "the vacuum worklist holds the 4 churned chains, not all 2000"
    );

    let s0 = db.stats();
    assert_eq!(db.vacuum_all(), 4);
    assert_eq!(db.stats().delta_since(&s0).versions_vacuumed, 4);
    assert_eq!(db.table_dirty_chains("wide").unwrap(), 0);
    assert_eq!(db.table_versions("wide").unwrap(), 1_999);
    db.check_consistency().unwrap();
}

#[test]
fn writers_vacuum_their_own_bloat_past_the_threshold() {
    let db = pairs_db();
    // Autocommit updates on one row: each leaves a dead version behind. The
    // write path's threshold vacuum must keep the chain bounded without any
    // checkpoint being taken.
    for i in 0..2_000i64 {
        db.execute(&format!("UPDATE pairs SET a = {i}, b = {i} WHERE id = 3")).unwrap();
    }
    let versions = db.table_versions("pairs").unwrap();
    assert!(
        versions < 600,
        "threshold vacuum must bound retained versions, got {versions}"
    );
    assert!(db.stats().versions_vacuumed >= 1_000);
    db.check_consistency().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random schedules of committing/aborting writer transactions keep
    /// every concurrent read consistent (a == b on every row, always) and
    /// reconcile to exactly the committed deltas.
    #[test]
    fn random_write_schedules_never_produce_dirty_reads(
        steps in proptest::collection::vec((0..PAIRS, 1..5i64, true), 1..60)
    ) {
        let db = pairs_db();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let db = &db;
            let done = &done;
            let steps = &steps;
            for _ in 0..2 {
                s.spawn(move || {
                    let all = db.prepare("SELECT a, b FROM pairs").unwrap();
                    while !done.load(Ordering::Relaxed) {
                        let rows = db
                            .session()
                            .query_as::<(i64, i64), _, _>(&all, ())
                            .expect("reader must never fail");
                        for (a, b) in rows {
                            assert_eq!(a, b, "dirty read under a random schedule");
                        }
                    }
                });
            }
            s.spawn(move || {
                for &(id, delta, commit) in steps {
                    write_step(db, id, delta, commit);
                }
                done.store(true, Ordering::Relaxed);
            });
        });

        // Committed deltas (and only those) are visible at the end.
        let mut expected = vec![0i64; PAIRS as usize];
        for &(id, delta, commit) in &steps {
            if commit {
                expected[id as usize] += delta;
            }
        }
        let rows = db
            .session()
            .query_as::<(i64, i64, i64), _, _>("SELECT id, a, b FROM pairs ORDER BY id", ())
            .unwrap();
        for (id, a, b) in rows {
            prop_assert_eq!(a, expected[id as usize], "row {} reconciles", id);
            prop_assert_eq!(a, b);
        }
        db.check_consistency().unwrap();
    }
}
