//! Property-based tests of simulator and scheduler invariants.

use cluster_sim::{ClusterSpec, EventQueue, JobSpec, SimDuration, SimTime};
use condorj2::{CondorJ2Config, CondorJ2Simulation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The event queue releases events in non-decreasing time order whatever
    /// the insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Conservation on small CondorJ2 pools: every submitted job is either
    /// completed or still accounted for in the database; completions never
    /// exceed submissions; the same seed gives the same outcome.
    #[test]
    fn condorj2_conserves_jobs(
        phys in 1u32..5,
        vms in 1u32..4,
        jobs in 1usize..40,
        job_secs in 10u64..180,
        seed in 0u64..1000,
    ) {
        let spec = ClusterSpec::uniform_fast(phys, vms);
        let run = |seed| {
            let mut sim = CondorJ2Simulation::new(CondorJ2Config::default(), &spec, seed);
            sim.submit(JobSpec::fixed_batch(jobs, SimDuration::from_secs(job_secs), "prop"));
            sim.run_until(SimTime::from_mins(10));
            let report = sim.report();
            let in_db = sim.cas().database().table_len("jobs").unwrap() as u64;
            (report.submitted, report.completed, in_db)
        };
        let (submitted, completed, in_db) = run(seed);
        prop_assert_eq!(submitted, jobs as u64);
        prop_assert!(completed <= submitted);
        // Jobs still in the database plus completed jobs account for everything.
        prop_assert_eq!(completed + in_db, submitted);
        // Determinism: the same seed reproduces the same counts.
        let again = run(seed);
        prop_assert_eq!(again, (submitted, completed, in_db));
    }
}
