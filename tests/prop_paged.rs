//! Equivalence tests for the paged storage engine: a database opened through
//! the paged path must behave exactly like the in-memory engine over random
//! schedules of inserts, updates, deletes, checkpoints and reopens — same
//! results, same errors — even with a buffer pool far smaller than the
//! dataset (8 frames of 512 bytes here), so eviction, write-back and
//! page-aware recovery are all on the hot path.

use proptest::prelude::*;
use relstore::{Database, DurabilityPolicy, MemBlockDevice, MemDevice, PagedConfig};

/// Tiny pages and a tiny pool: at a few dozen rows the dataset already
/// dwarfs the pool, so the schedules below constantly evict.
fn small_config() -> PagedConfig {
    PagedConfig {
        page_size: 512,
        pool_pages: 8,
    }
}

fn open_paged_mem(wal: Vec<u8>, pages: Vec<u8>, journal: Vec<u8>) -> Database {
    Database::open_paged_with_devices(
        Box::new(MemDevice::with_contents(wal)),
        Box::new(MemBlockDevice::with_contents(pages)),
        Box::new(MemDevice::with_contents(journal)),
        DurabilityPolicy::Always,
        small_config(),
    )
    .expect("paged open")
}

fn fresh_paged() -> Database {
    open_paged_mem(Vec::new(), Vec::new(), Vec::new())
}

/// Clean reopen: what a process restart would see (commits are durable
/// under `DurabilityPolicy::Always`, dirty pool frames are not — recovery
/// replays the WAL suffix over whatever the page file absorbed).
fn reopen_paged(db: &Database) -> Database {
    open_paged_mem(
        db.durable_log_bytes().expect("wal bytes"),
        db.durable_page_bytes().expect("page bytes"),
        db.durable_journal_bytes().expect("journal bytes"),
    )
}

const CREATE: &str = "CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT NOT NULL, payload TEXT)";

#[derive(Debug, Clone)]
enum Op {
    /// `big` payloads exceed what a 512-byte page can hold inline, forcing
    /// the overflow-chain path.
    Insert { id: i64, state: u8, big: bool },
    Update { id: i64, state: u8 },
    Delete { id: i64 },
    Checkpoint,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..64i64, 0..4u8, 0..5u8)
            .prop_map(|(id, state, big)| Op::Insert { id, state, big: big == 0 }),
        (0..64i64, 0..4u8, 0..5u8)
            .prop_map(|(id, state, big)| Op::Insert { id, state, big: big == 0 }),
        (0..64i64, 0..4u8).prop_map(|(id, state)| Op::Update { id, state }),
        (0..64i64, 0..4u8).prop_map(|(id, state)| Op::Update { id, state }),
        (0..64i64).prop_map(|id| Op::Delete { id }),
        Just(Op::Checkpoint),
        Just(Op::Reopen),
    ]
}

fn state_name(state: u8) -> &'static str {
    match state {
        0 => "idle",
        1 => "matched",
        2 => "running",
        _ => "held",
    }
}

fn payload(id: i64, big: bool) -> String {
    if big {
        // ~1500 bytes: spans several 512-byte overflow chunks.
        format!("p{id}-").repeat(300)
    } else {
        format!("p{id}")
    }
}

fn op_sql(op: &Op) -> String {
    match op {
        Op::Insert { id, state, big } => format!(
            "INSERT INTO jobs VALUES ({id}, '{}', '{}')",
            state_name(*state),
            payload(*id, *big)
        ),
        Op::Update { id, state } => format!(
            "UPDATE jobs SET state = '{}' WHERE job_id = {id}",
            state_name(*state)
        ),
        Op::Delete { id } => format!("DELETE FROM jobs WHERE job_id = {id}"),
        Op::Checkpoint | Op::Reopen => unreachable!("not SQL ops"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paged engine and the in-memory engine, fed the same random
    /// schedule, answer identically at every step — including across
    /// checkpoints and clean reopens of the paged side.
    #[test]
    fn paged_database_matches_in_memory_oracle(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut paged = fresh_paged();
        let oracle = Database::new();
        paged.execute(CREATE).unwrap();
        oracle.execute(CREATE).unwrap();

        for op in &ops {
            match op {
                Op::Checkpoint => {
                    // No transactions are open, so neither side may refuse.
                    paged.checkpoint().unwrap();
                    oracle.checkpoint().unwrap();
                }
                Op::Reopen => {
                    paged = reopen_paged(&paged);
                }
                sql_op => {
                    let p = paged.execute(&op_sql(sql_op));
                    let o = oracle.execute(&op_sql(sql_op));
                    match (&p, &o) {
                        (Ok(pr), Ok(or)) => prop_assert_eq!(pr.affected(), or.affected()),
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(false, "divergent results: paged={p:?} oracle={o:?}"),
                    }
                }
            }
        }

        paged.check_consistency().unwrap();
        let q = "SELECT * FROM jobs ORDER BY job_id";
        prop_assert_eq!(paged.query(q).unwrap(), oracle.query(q).unwrap());

        // One final restart: recovery must land on the same committed state.
        let recovered = reopen_paged(&paged);
        recovered.check_consistency().unwrap();
        prop_assert_eq!(recovered.query(q).unwrap(), oracle.query(q).unwrap());
    }
}

#[test]
fn eviction_pressure_keeps_contents_exact() {
    let db = fresh_paged();
    db.execute(CREATE).unwrap();
    for i in 0..200 {
        db.execute(&format!("INSERT INTO jobs VALUES ({i}, 'idle', 'p{i}')"))
            .unwrap();
    }
    let stats = db.stats();
    assert!(
        stats.buffer_evictions > 0 && stats.pages_written > 0,
        "200 rows must not fit an 8×512-byte pool: {stats:?}"
    );

    let reopened = reopen_paged(&db);
    assert_eq!(reopened.table_len("jobs").unwrap(), 200);
    assert_eq!(
        reopened
            .query("SELECT COUNT(*) FROM jobs WHERE state = 'idle'")
            .unwrap()
            .scalar_int()
            .unwrap(),
        200
    );
    assert!(reopened.is_paged());
}

#[test]
fn overflow_rows_survive_checkpoint_and_reopen() {
    let db = fresh_paged();
    db.execute(CREATE).unwrap();
    let big = "x".repeat(4000);
    db.execute(&format!("INSERT INTO jobs VALUES (1, 'idle', '{big}')"))
        .unwrap();
    db.execute("INSERT INTO jobs VALUES (2, 'idle', 'small')")
        .unwrap();
    assert!(db.stats().overflow_pages > 0, "4000B row must overflow");
    db.checkpoint().unwrap();

    let reopened = reopen_paged(&db);
    let q = "SELECT payload FROM jobs WHERE job_id = 1";
    assert_eq!(reopened.query(q).unwrap(), db.query(q).unwrap());

    // Deleting the big row releases its chain; the freed pages are reused
    // rather than growing the file.
    reopened
        .execute("DELETE FROM jobs WHERE job_id = 1")
        .unwrap();
    reopened
        .execute(&format!("INSERT INTO jobs VALUES (3, 'idle', '{big}')"))
        .unwrap();
    assert_eq!(reopened.table_len("jobs").unwrap(), 2);
}

#[test]
fn in_memory_database_reports_no_page_store() {
    let db = Database::new();
    assert!(!db.is_paged());
    assert!(db.durable_page_bytes().is_err());
    assert!(db.durable_journal_bytes().is_err());
}
