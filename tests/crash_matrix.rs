//! The crash-recovery matrix: a mixed workload is run against a durable
//! database, and the resulting log is replayed from **every** record
//! boundary — plus sampled torn tails in between — asserting that recovery
//! always yields exactly the committed prefix, never panics, and never
//! resurrects rolled-back or unfinished transactions.

use relstore::io::{decode_segment, record_boundaries};
use relstore::wal::LogRecord;
use relstore::{Database, DurabilityPolicy, MemDevice, OpStats};
use std::collections::BTreeMap;

/// A stable, order-independent fingerprint of every table's contents.
fn dump(db: &Database) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut names = db.table_names();
    names.sort();
    for t in names {
        let q = db.query(&format!("SELECT * FROM {t}")).unwrap();
        let mut rows: Vec<String> = q.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        out.insert(t, rows);
    }
    out
}

/// Commit records in a decoded prefix — the index into the dump history
/// that a recovery from this prefix must reproduce.
fn commits_in(bytes: &[u8]) -> usize {
    let mut scratch = OpStats::default();
    decode_segment(bytes, &mut scratch)
        .unwrap()
        .records
        .iter()
        .filter(|r| matches!(r, LogRecord::Commit { .. }))
        .count()
}

/// Runs the mixed workload against a fresh durable database and returns the
/// state fingerprint after each commit (`dumps[k]` = state once `k` commits
/// are on the log) together with the final log bytes.
fn run_workload() -> (Vec<BTreeMap<String, Vec<String>>>, Vec<u8>) {
    let db =
        Database::open_with_device(Box::new(MemDevice::new()), DurabilityPolicy::Always).unwrap();
    let mut dumps = vec![dump(&db)];
    let mut committed = |db: &Database| dumps.push(dump(db));

    // DDL, autocommit: two tables.
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT, runtime DOUBLE)").unwrap();
    committed(&db);
    db.execute("CREATE TABLE machines (machine_id INT PRIMARY KEY, name TEXT)").unwrap();
    committed(&db);

    // DML, autocommit.
    db.execute("INSERT INTO jobs VALUES (1, 'idle', NULL)").unwrap();
    committed(&db);
    db.execute("INSERT INTO jobs VALUES (2, 'running', 12.5)").unwrap();
    committed(&db);

    // A batched insert: one Batch record, one commit.
    let ins = db.prepare("INSERT INTO machines VALUES (?, ?)").unwrap();
    db.session()
        .execute_batch(&ins, (0..8i64).map(|i| (i, format!("node{i:02}"))))
        .unwrap();
    committed(&db);

    // An explicit transaction that commits: update + insert together.
    {
        let txn = db.transaction();
        txn.execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("done", 1i64)).unwrap();
        txn.execute("INSERT INTO jobs VALUES (3, 'idle', NULL)", ()).unwrap();
        txn.commit().unwrap();
    }
    committed(&db);

    // An explicit transaction that rolls back: its records (Begin, Update,
    // Abort) hit the log but must never be replayed.
    {
        let txn = db.transaction();
        txn.execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("ghost", 2i64)).unwrap();
        // Guard dropped: rollback.
    }

    // More autocommit DML after the abort.
    db.execute("UPDATE jobs SET runtime = 99.0 WHERE job_id = 2").unwrap();
    committed(&db);
    db.execute("DELETE FROM machines WHERE machine_id = 7").unwrap();
    committed(&db);

    // A table that lives and dies: both DDL records are on the log.
    db.execute("CREATE TABLE scratch (id INT PRIMARY KEY)").unwrap();
    committed(&db);
    db.execute("INSERT INTO scratch VALUES (42)").unwrap();
    committed(&db);
    db.execute("DROP TABLE scratch").unwrap();
    committed(&db);

    // A transaction left open at the crash: Begin + Update with no
    // Commit/Abort ever written. Recovery must ignore it entirely.
    let open = db.begin();
    let upd = db.prepare("UPDATE jobs SET state = ? WHERE job_id = ?").unwrap();
    db.execute_prepared_in(open, &upd, &["limbo".into(), 3i64.into()]).unwrap();

    db.flush_log().unwrap();
    let bytes = db.durable_log_bytes().unwrap();
    (dumps, bytes)
}

#[test]
fn every_record_boundary_prefix_recovers_the_committed_state() {
    let (dumps, bytes) = run_workload();
    let boundaries = record_boundaries(&bytes).unwrap();
    assert!(
        boundaries.len() > 30,
        "workload should produce a substantial log, got {} records",
        boundaries.len() - 1
    );
    assert_eq!(commits_in(&bytes), dumps.len() - 1, "one dump per commit on the log");
    eprintln!(
        "crash matrix: {} byte log, {} records, {} boundary prefixes, {} commits",
        bytes.len(),
        boundaries.len() - 1,
        boundaries.len(),
        dumps.len() - 1
    );

    for &b in &boundaries {
        let prefix = bytes[..b as usize].to_vec();
        let expected_commits = commits_in(&prefix);
        let db = Database::open_with_device(
            Box::new(MemDevice::with_contents(prefix)),
            DurabilityPolicy::Always,
        )
        .unwrap_or_else(|e| panic!("recovery failed at clean boundary {b}: {e}"));

        assert_eq!(
            dump(&db),
            dumps[expected_commits],
            "boundary {b}: recovered state must equal the state after {expected_commits} commits"
        );
        db.check_consistency().unwrap();
        assert_eq!(
            db.stats().recovery_truncated_bytes,
            0,
            "a clean boundary needs no tail repair"
        );

        // The recovered catalog still enforces its constraints: a duplicate
        // primary key is refused, not silently absorbed.
        if db.table_names().iter().any(|t| t == "jobs") && db.table_len("jobs").unwrap() > 0 {
            let err = db.execute("INSERT INTO jobs VALUES (1, 'dup', NULL)").unwrap_err();
            assert_eq!(err.class(), relstore::ErrorClass::Constraint, "{err}");
        }

        // And the recovered database keeps working: it accepts new commits.
        db.execute("CREATE TABLE probe (id INT PRIMARY KEY)").unwrap();
        db.execute("INSERT INTO probe VALUES (1)").unwrap();
        assert_eq!(db.table_len("probe").unwrap(), 1);
    }
}

#[test]
fn torn_tails_between_boundaries_recover_the_last_full_record_prefix() {
    let (dumps, bytes) = run_workload();
    let boundaries = record_boundaries(&bytes).unwrap();

    for pair in boundaries.windows(2) {
        let (b, next) = (pair[0] as usize, pair[1] as usize);
        let record_len = next - b;
        // Sample torn positions inside this record: first byte, midpoint,
        // one short of complete.
        let mut cuts = vec![1, record_len / 2, record_len - 1];
        cuts.dedup();
        for d in cuts {
            if d == 0 || d >= record_len {
                continue;
            }
            let torn = bytes[..b + d].to_vec();
            let expected_commits = commits_in(&bytes[..b]);
            let db = Database::open_with_device(
                Box::new(MemDevice::with_contents(torn)),
                DurabilityPolicy::Always,
            )
            .unwrap_or_else(|e| panic!("torn tail at {b}+{d} must recover, got: {e}"));
            assert_eq!(
                dump(&db),
                dumps[expected_commits],
                "torn tail at {b}+{d}: state must equal the last full-record prefix"
            );
            db.check_consistency().unwrap();
            assert_eq!(
                db.stats().recovery_truncated_bytes,
                d as u64,
                "exactly the torn bytes are truncated"
            );
        }
    }
}

// --- the paged engine's crash matrix ---------------------------------------
//
// A paged database crashes as three coupled artifacts: WAL, page file and
// doublewrite journal. The meaningful crash states are the triples the
// devices actually held together, so the workload snapshots all three after
// every commit — interleaving checkpoints (schemas-only WAL, pages
// authoritative) and overflow-sized rows — and recovery from each triple
// must reproduce exactly that commit's state.

use relstore::{DurabilityPolicy as Policy, MemBlockDevice, PagedConfig};

fn paged_cfg() -> PagedConfig {
    PagedConfig {
        page_size: 512,
        pool_pages: 4,
    }
}

type CrashTriple = (Vec<u8>, Vec<u8>, Vec<u8>);

fn crash_view(db: &Database) -> CrashTriple {
    (
        db.durable_log_bytes().unwrap(),
        db.durable_page_bytes().unwrap(),
        db.durable_journal_bytes().unwrap(),
    )
}

fn open_triple((wal, pages, journal): &CrashTriple) -> relstore::Result<Database> {
    Database::open_paged_with_devices(
        Box::new(MemDevice::with_contents(wal.clone())),
        Box::new(MemBlockDevice::with_contents(pages.clone())),
        Box::new(MemDevice::with_contents(journal.clone())),
        Policy::Always,
        paged_cfg(),
    )
}

#[test]
fn every_paged_commit_snapshot_recovers_its_exact_state() {
    let db = Database::open_paged_with_devices(
        Box::new(MemDevice::new()),
        Box::new(MemBlockDevice::new()),
        Box::new(MemDevice::new()),
        Policy::Always,
        paged_cfg(),
    )
    .unwrap();

    let mut snapshots: Vec<(BTreeMap<String, Vec<String>>, CrashTriple)> = Vec::new();
    let mut committed = |db: &Database| snapshots.push((dump(db), crash_view(db)));

    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT, blob TEXT)").unwrap();
    committed(&db);
    for i in 0..12 {
        db.execute(&format!("INSERT INTO jobs VALUES ({i}, 'idle', 'b{i}')")).unwrap();
        committed(&db);
    }
    // An overflow row: bigger than a whole 512-byte page.
    let big = "y".repeat(1400);
    db.execute(&format!("INSERT INTO jobs VALUES (100, 'big', '{big}')")).unwrap();
    committed(&db);
    // Checkpoint: schemas-only WAL record, pages become the authority.
    db.checkpoint().unwrap();
    committed(&db);
    // Post-checkpoint traffic, including a transaction and a rollback.
    {
        let txn = db.transaction();
        txn.execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("done", 0i64)).unwrap();
        txn.execute("DELETE FROM jobs WHERE job_id = ?", (11i64,)).unwrap();
        txn.commit().unwrap();
    }
    committed(&db);
    {
        let txn = db.transaction();
        txn.execute("UPDATE jobs SET state = ? WHERE job_id = ?", ("ghost", 1i64)).unwrap();
        // Dropped: rolled back, must never surface after any crash.
    }
    db.execute("UPDATE jobs SET blob = 'rewritten' WHERE job_id = 100").unwrap();
    committed(&db);
    db.execute("CREATE TABLE scratch (id INT PRIMARY KEY)").unwrap();
    committed(&db);
    db.execute("INSERT INTO scratch VALUES (7)").unwrap();
    committed(&db);
    db.execute("DROP TABLE scratch").unwrap();
    committed(&db);
    db.checkpoint().unwrap();
    committed(&db);
    db.execute("DELETE FROM jobs WHERE job_id = 100").unwrap();
    committed(&db);

    eprintln!("paged crash matrix: {} commit snapshots", snapshots.len());
    for (i, (expected, triple)) in snapshots.iter().enumerate() {
        let recovered = open_triple(triple)
            .unwrap_or_else(|e| panic!("snapshot {i}: paged recovery failed: {e}"));
        assert_eq!(
            &dump(&recovered),
            expected,
            "snapshot {i}: recovered state must equal the state at that commit"
        );
        recovered.check_consistency().unwrap();
        assert!(recovered.is_paged());

        // The recovered database keeps working end to end.
        recovered.execute("CREATE TABLE probe (id INT PRIMARY KEY)").unwrap();
        recovered.execute("INSERT INTO probe VALUES (1)").unwrap();
        assert_eq!(recovered.table_len("probe").unwrap(), 1);
    }
}
