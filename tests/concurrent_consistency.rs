//! Multi-threaded consistency tests: N reader threads share the database
//! with a writer thread running explicit transactions. Readers must never
//! observe a partial transaction (the sum invariant holds on every read),
//! must never fail against the writer (MVCC snapshot reads take no locks —
//! zero `LockConflict`s allowed), and the final state must reconcile
//! exactly.

use proptest::prelude::*;
use relstore::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const ACCOUNTS: i64 = 50;
const OPENING_BALANCE: i64 = 100;
const TOTAL: i64 = ACCOUNTS * OPENING_BALANCE;

fn accounts_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)").unwrap();
    let ins = db.prepare("INSERT INTO accounts VALUES (?, ?)").unwrap();
    db.session()
        .execute_batch(&ins, (0..ACCOUNTS).map(|id| (id, OPENING_BALANCE)))
        .unwrap();
    db
}

/// Moves `delta` from account `from` to account `to` in one transaction,
/// retrying on write-write conflicts through [`relstore::Session::with_retries`]
/// (a failed attempt's guard drops, rolling the half-applied transfer back).
/// The two UPDATEs make the intermediate state (money subtracted but not yet
/// added) observable to any reader that could sneak between them — which is
/// exactly what must never happen.
fn transfer(db: &Database, from: i64, to: i64, delta: i64) {
    let debit = db
        .prepare("UPDATE accounts SET balance = balance - ? WHERE id = ?")
        .unwrap();
    let credit = db
        .prepare("UPDATE accounts SET balance = balance + ? WHERE id = ?")
        .unwrap();
    db.session()
        .with_retries(64, |s| {
            let txn = s.transaction()?;
            txn.execute(&debit, (delta, from))?;
            txn.execute(&credit, (delta, to))?;
            txn.commit()
        })
        .expect("transfer failed");
}

/// Runs `transfers` on a writer thread while `readers` threads continuously
/// check the sum invariant. Returns the number of successful invariant reads.
///
/// Under MVCC a reader must **never** fail against the writer — there is no
/// retry arm here: any reader error (in particular a `LockConflict`) fails
/// the test.
fn run_scenario(db: &Database, transfers: &[(i64, i64, i64)], readers: usize) -> u64 {
    let done = AtomicBool::new(false);
    let good_reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        let done = &done;
        let good_reads = &good_reads;
        for _ in 0..readers {
            s.spawn(move || {
                let sum = db
                    .prepare("SELECT SUM(balance) AS total, COUNT(*) AS n FROM accounts")
                    .unwrap();
                while !done.load(Ordering::Relaxed) {
                    // A reader that slipped between the two UPDATEs of a
                    // transfer would see TOTAL - delta here; one that raced
                    // the writer's lock would fail — both are MVCC bugs.
                    let row = db
                        .session()
                        .query_one::<(i64, i64), _, _>(&sum, ())
                        .expect("readers must never fail against the writer");
                    let (total, n) = row.expect("aggregate always yields one row");
                    assert_eq!(total, TOTAL, "reader observed a partial transaction");
                    assert_eq!(n, ACCOUNTS);
                    good_reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        s.spawn(move || {
            for &(from, to, delta) in transfers {
                transfer(db, from, to, delta);
            }
            done.store(true, Ordering::Relaxed);
        });
    });
    good_reads.load(Ordering::Relaxed)
}

fn final_state_reconciles(db: &Database, transfers: &[(i64, i64, i64)]) {
    let r = db.query("SELECT SUM(balance) FROM accounts").unwrap();
    assert_eq!(r.scalar_int(), Some(TOTAL));
    // Per-account balances must equal the opening balance plus net transfers.
    let mut expected = vec![OPENING_BALANCE; ACCOUNTS as usize];
    for &(from, to, delta) in transfers {
        expected[from as usize] -= delta;
        expected[to as usize] += delta;
    }
    let by_id = db.prepare("SELECT balance FROM accounts WHERE id = ?").unwrap();
    // One pipelined batch checks every account under a single read guard.
    let balances = db
        .session()
        .query_batch(&by_id, (0..ACCOUNTS).map(|id| (id,)))
        .unwrap();
    for (id, (r, want)) in balances.iter().zip(&expected).enumerate() {
        assert_eq!(r.scalar_int(), Some(*want), "balance of account {id}");
    }
    db.check_consistency().unwrap();
}

#[test]
fn readers_never_observe_partial_transactions() {
    let db = accounts_db();
    let transfers: Vec<(i64, i64, i64)> = (0..300)
        .map(|i: i64| {
            let from = (i * 7) % ACCOUNTS;
            let to = (i * 13 + 1) % ACCOUNTS;
            (from, to, 1 + i % 5)
        })
        .collect();
    let good_reads = run_scenario(&db, &transfers, 4);
    assert!(good_reads > 0, "readers must make progress while the writer runs");
    final_state_reconciles(&db, &transfers);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random transfer schedules preserve the invariant under concurrency.
    #[test]
    fn random_transfer_schedules_reconcile(
        raw in proptest::collection::vec((0..ACCOUNTS, 0..ACCOUNTS, 1..10i64), 1..40)
    ) {
        let db = accounts_db();
        run_scenario(&db, &raw, 2);
        final_state_reconciles(&db, &raw);
    }
}
