//! Seeded whole-stack chaos soak: a durable database served over TCP under
//! mixed hostile traffic — committers transferring money, scanners checking
//! the conserved sum, abandoners going silent mid-transaction, peers
//! disconnecting mid-frame — while WAL failpoints fire and the process
//! "crashes" (drop without checkpoint) and recovers between rounds.
//!
//! Invariants, asserted every round from a fixed seed:
//!
//! * **Zero panics** anywhere in the stack (a thread panic fails the test).
//! * **Conserved transfer sum**: `SUM(balance)` equals the opening total on
//!   every successful read and after every crash recovery — transfers are
//!   atomic in memory, on the wire, and through the log.
//! * **Bounded horizon lag**: once the round's traffic stops and the reaper
//!   runs, nothing pins the vacuum horizon (`horizon_lag() == 0`).
//! * **Every error is typed**: clients may see timeouts, lock waits, budget
//!   refusals, transport and IO failures — but never `Error::Internal` and
//!   never `Error::Corruption`.
//! * **Observability stays honest**: the system tables answer SQL mid-fault
//!   (a monitor client polls them through the chaos), every counted
//!   statement leaves exactly one histogram sample, and no counter moves
//!   backwards within a round (gauges exempt).
//!
//! The default run is a short smoke (a few seconds). `CHAOS_SEED=<n>`
//! reproduces a failing run exactly; `CHAOS_SECS=<n>` extends the soak.

use relstore::io::points;
use relstore::{Database, Error, FailAction, OpStats};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wire::{serve_with, Client, ServerConfig};

const ACCOUNTS: i64 = 16;
const OPENING: i64 = 1_000;
const TOTAL: i64 = ACCOUNTS * OPENING;

/// SplitMix64: tiny, seedable, and good enough to drive chaos decisions
/// deterministically without pulling in a dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Fails the test on the two error shapes that must never surface: the
/// engine's internal-bug catch-all and log corruption. Everything else —
/// timeouts, lock waits, budget refusals, transport and IO failures — is
/// expected weather in a chaos run.
fn assert_typed(e: &Error, who: &str, seed: u64) {
    assert!(
        !matches!(e, Error::Internal(_) | Error::Corruption(_)),
        "{who} saw a forbidden error (seed {seed}): {e}"
    );
}

/// A monitoring client: polls the observability system tables over the wire
/// while the chaos runs. The tables must stay queryable mid-fault — typed
/// errors are expected weather, wrong shapes and forbidden errors are not.
fn monitor(addr: std::net::SocketAddr, stop: &AtomicBool, seed: u64, good: &AtomicU64) {
    let Ok(mut client) = Client::connect(addr) else { return };
    let queries = [
        "SELECT name, kind, value FROM rel_stats",
        "SELECT name, count, p99_us FROM rel_histograms",
        "SELECT seq, kind, duration_us, lock_wait_us FROM rel_slow_queries",
    ];
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let sql = queries[i % queries.len()];
        i += 1;
        match client.query(sql, ()) {
            Ok(r) => {
                if sql.contains("rel_stats") {
                    assert!(!r.rows.is_empty(), "rel_stats came back empty (seed {seed})");
                }
                good.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => assert_typed(&e, "monitor", seed),
        }
        if client.is_broken() {
            match Client::connect(addr) {
                Ok(c) => client = c,
                Err(_) => return,
            }
        }
        std::thread::sleep(Duration::from_millis(3));
    }
}

/// Observability invariants at the round's quiesce point (traffic stopped,
/// workers joined): every statement the engine counted left exactly one
/// histogram sample, and no counter moved backwards since the post-recovery
/// baseline — gauges (high-water marks) are exempt.
fn assert_obs_invariants(db: &Database, baseline: &OpStats, rounds: u32, seed: u64) {
    let now = db.stats();
    assert_eq!(
        db.obs().histograms.statement_total(),
        now.statements_executed,
        "round {rounds}: histogram samples diverged from statements_executed (seed {seed})"
    );
    for ((name, before), (after_name, after)) in
        baseline.fields().into_iter().zip(now.fields())
    {
        assert_eq!(name, after_name, "OpStats field order is stable");
        if OpStats::is_gauge(name) {
            continue;
        }
        assert!(
            after >= before,
            "round {rounds}: counter {name} went backwards {before} -> {after} (seed {seed})"
        );
    }
}

fn bank_sum(db: &Database) -> i64 {
    db.session()
        .query_scalars::<i64, _, _>("SELECT SUM(balance) AS s FROM accounts", ())
        .unwrap()[0]
}

fn committer(addr: std::net::SocketAddr, stop: &AtomicBool, mut rng: Rng, seed: u64, commits: &AtomicU64) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return,
    };
    while !stop.load(Ordering::Relaxed) {
        let from = rng.below(ACCOUNTS as u64) as i64;
        let to = rng.below(ACCOUNTS as u64) as i64;
        let amount = 1 + rng.below(7) as i64;
        let res = client.with_retries_deadline(8, Duration::from_millis(120), |c| {
            let mut txn = c.transaction()?;
            txn.execute(
                "UPDATE accounts SET balance = balance - ? WHERE id = ?",
                (amount, from),
            )?;
            txn.execute(
                "UPDATE accounts SET balance = balance + ? WHERE id = ?",
                (amount, to),
            )?;
            txn.commit()
        });
        match res {
            Ok(()) => {
                commits.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => assert_typed(&e, "committer", seed),
        }
        if client.is_broken() {
            match Client::connect(addr) {
                Ok(c) => client = c,
                Err(_) => return,
            }
        }
    }
}

fn scanner(addr: std::net::SocketAddr, stop: &AtomicBool, seed: u64, good_reads: &AtomicU64) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return,
    };
    client.set_statement_deadline(Some(Duration::from_millis(500)));
    while !stop.load(Ordering::Relaxed) {
        match client.query_scalars::<i64, _, _>("SELECT SUM(balance) AS s FROM accounts", ()) {
            Ok(sums) => {
                assert_eq!(
                    sums,
                    vec![TOTAL],
                    "scanner observed a torn transfer (seed {seed})"
                );
                good_reads.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => assert_typed(&e, "scanner", seed),
        }
        if client.is_broken() {
            match Client::connect(addr) {
                Ok(c) => client = c,
                Err(_) => return,
            }
        }
    }
}

/// Opens a transaction, grabs the table lock, and goes silent with the
/// socket held open — the exact shape only the idle-*transaction* reaper
/// (not the dead-socket reaper) can clean up.
fn abandoner(addr: std::net::SocketAddr, stop: &AtomicBool, mut rng: Rng, seed: u64) {
    while !stop.load(Ordering::Relaxed) {
        let Ok(mut client) = Client::connect(addr) else { return };
        let id = rng.below(ACCOUNTS as u64) as i64;
        let res = client
            .begin()
            .and_then(|()| client.execute("UPDATE accounts SET balance = balance - 1 WHERE id = ?", (id,)))
            .map(|_| ());
        if let Err(e) = res {
            assert_typed(&e, "abandoner", seed);
        }
        // Silence. The server must abort the transaction, undo the
        // one-sided debit and free the lock while this socket stays open.
        let nap = 60 + rng.below(80);
        let until = Instant::now() + Duration::from_millis(nap);
        while Instant::now() < until && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Dropping the client sends a best-effort Rollback — harmless if
        // the reaper already aborted the transaction server-side.
    }
}

/// Connects, completes the handshake, then violates the framing protocol:
/// announces a frame and vanishes mid-payload, or sprays garbage. The
/// server must fail the connection cleanly without pinning a worker.
fn disconnector(addr: std::net::SocketAddr, stop: &AtomicBool, mut rng: Rng) {
    while !stop.load(Ordering::Relaxed) {
        let Ok(mut stream) = TcpStream::connect(addr) else { return };
        let _ = wire::protocol::write_hello(&mut stream);
        let _ = wire::protocol::read_handshake_response(&mut stream);
        match rng.below(3) {
            // Announce 64 KiB, deliver 3 bytes, vanish mid-frame.
            0 => {
                let _ = stream.write_all(&(65_536u32).to_le_bytes());
                let _ = stream.write_all(&[1, 2, 3]);
            }
            // A well-formed frame of garbage: decodes to a protocol error.
            1 => {
                let _ = stream.write_all(&(4u32).to_le_bytes());
                let _ = stream.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]);
            }
            // Vanish right after the handshake.
            _ => {}
        }
        drop(stream);
        std::thread::sleep(Duration::from_millis(rng.below(20)));
    }
}

/// Arms one random WAL failpoint partway through the round. A sync error
/// poisons the log writer (all later commits fail typed `Error::Io` until
/// the crash/reopen), short and torn writes exercise recovery truncation,
/// and `Crash` kills the device at the durability barrier.
fn saboteur(db: &Database, stop: &AtomicBool, mut rng: Rng) {
    let delay = Duration::from_millis(30 + rng.below(120));
    let until = Instant::now() + delay;
    while Instant::now() < until {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let (point, action) = match rng.below(4) {
        0 => (points::WAL_SYNC, FailAction::Err),
        1 => (points::WAL_APPEND, FailAction::ShortWrite(rng.below(24) as usize)),
        2 => (points::WAL_APPEND, FailAction::TornWrite(rng.below(40) as usize)),
        _ => (points::WAL_SYNC, FailAction::Crash),
    };
    db.failpoints().arm(point, action);
}

#[test]
fn chaos_soak_conserves_money_through_faults_and_crashes() {
    let seed = env_u64("CHAOS_SEED", 0xC1D2_2007_D0B2);
    let soak = Duration::from_secs(env_u64("CHAOS_SECS", 4));
    // Captured output only surfaces on failure — exactly when the seed is
    // needed to reproduce the run.
    println!("chaos soak: CHAOS_SEED={seed} CHAOS_SECS={}", soak.as_secs());
    let mut rng = Rng(seed);

    let path = std::env::temp_dir().join(format!(
        "relstore_chaos_{}_{seed:x}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Seed the bank, then "crash" (drop with no checkpoint): round 1 starts
    // with a real recovery.
    {
        let db = Database::open_durable(&path).unwrap();
        db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)").unwrap();
        let ins = db.prepare("INSERT INTO accounts VALUES (?, ?)").unwrap();
        db.session()
            .execute_batch(&ins, (0..ACCOUNTS).map(|id| (id, OPENING)))
            .unwrap();
    }

    let deadline = Instant::now() + soak;
    let total_commits = AtomicU64::new(0);
    let total_reads = AtomicU64::new(0);
    let total_obs_reads = AtomicU64::new(0);
    let mut total_reaped = 0u64;
    let mut rounds = 0u32;
    loop {
        rounds += 1;

        // Crash recovery: whatever last round's faults did to the log tail,
        // the committed prefix must reconstruct a consistent bank with the
        // full sum.
        let db = Arc::new(Database::open_durable(&path).unwrap_or_else(|e| {
            panic!("round {rounds}: recovery failed (seed {seed}): {e}")
        }));
        db.check_consistency()
            .unwrap_or_else(|e| panic!("round {rounds}: inconsistent after recovery (seed {seed}): {e}"));
        assert_eq!(
            bank_sum(&db),
            TOTAL,
            "round {rounds}: money not conserved through crash recovery (seed {seed})"
        );
        if Instant::now() >= deadline {
            let _ = std::fs::remove_file(&path);
            break;
        }

        let server = serve_with(
            Arc::clone(&db),
            "127.0.0.1:0",
            ServerConfig {
                workers: 6,
                max_connections: 32,
                poll_interval: Duration::from_millis(5),
                statement_deadline: Some(Duration::from_secs(2)),
                lock_wait_timeout: Duration::from_millis(25),
                idle_txn_timeout: Some(Duration::from_millis(40)),
                reap_interval: Duration::from_millis(10),
                // Arm the slow-query ring: under a 25 ms lock-wait budget
                // plenty of statements cross 5 ms, so the monitor reads a
                // live ring, not an empty one.
                slow_query_threshold: Some(Duration::from_millis(5)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let obs_baseline = db.stats();

        let round_ms = 150 + rng.below(250);
        let fault_round = rng.chance(50);
        let stop = AtomicBool::new(false);
        let mut seeds = [0u64; 8];
        for s in &mut seeds {
            *s = rng.next();
        }

        std::thread::scope(|s| {
            let stop = &stop;
            let commits = &total_commits;
            let reads = &total_reads;
            let obs = &total_obs_reads;
            s.spawn(move || committer(addr, stop, Rng(seeds[0]), seed, commits));
            s.spawn(move || committer(addr, stop, Rng(seeds[1]), seed, commits));
            s.spawn(move || scanner(addr, stop, seed, reads));
            s.spawn(move || abandoner(addr, stop, Rng(seeds[2]), seed));
            s.spawn(move || disconnector(addr, stop, Rng(seeds[3])));
            s.spawn(move || monitor(addr, stop, seed, obs));
            let dbref = &db;
            if fault_round {
                s.spawn(move || saboteur(dbref, stop, Rng(seeds[4])));
            }
            std::thread::sleep(Duration::from_millis(round_ms));
            stop.store(true, Ordering::SeqCst);
            // The scope joins every thread here; any panic in any of them
            // (including inside the server's workers via a poisoned
            // invariant) propagates and fails the test.
        });
        server.shutdown();
        assert_obs_invariants(&db, &obs_baseline, rounds, seed);

        // With traffic stopped and connections rolled back, nothing may pin
        // the vacuum horizon: reap whatever straggles and demand lag zero.
        db.reap_idle(Duration::ZERO);
        assert_eq!(
            db.horizon_lag(),
            0,
            "round {rounds}: something still pins the vacuum horizon (seed {seed})"
        );
        db.vacuum_all();
        db.check_consistency()
            .unwrap_or_else(|e| panic!("round {rounds}: inconsistent after round (seed {seed}): {e}"));
        assert_eq!(
            bank_sum(&db),
            TOTAL,
            "round {rounds}: money not conserved in memory (seed {seed})"
        );
        total_reaped += db.stats().txns_reaped;

        // An unpoisoned log occasionally checkpoints, so recovery cost
        // stays bounded and the checkpoint path is part of the chaos too.
        if !fault_round && rng.chance(50) {
            let _ = db.checkpoint();
        }
        // "Crash": the Arc drops with no shutdown ceremony; the next round
        // recovers from whatever the file holds.
        drop(db);
    }

    let commits = total_commits.load(Ordering::Relaxed);
    let reads = total_reads.load(Ordering::Relaxed);
    let obs_reads = total_obs_reads.load(Ordering::Relaxed);
    println!(
        "chaos soak: {rounds} round(s), {commits} commit(s), {reads} invariant read(s), \
         {obs_reads} system-table read(s), {total_reaped} txn(s) reaped"
    );
    assert!(rounds >= 2, "the soak must complete at least one full round");
    assert!(commits > 0, "committers made no progress at all (seed {seed})");
    assert!(reads > 0, "scanners made no progress at all (seed {seed})");
    assert!(
        obs_reads > 0,
        "the system-table monitor made no progress at all (seed {seed})"
    );
    assert!(
        total_reaped > 0,
        "abandoners ran but the reaper never fired (seed {seed})"
    );
}

/// Arms one random failpoint partway through a paged round — the WAL set
/// plus the page-write/page-sync points, so the doublewrite journal and
/// page-store poisoning are part of the chaos.
fn paged_saboteur(db: &Database, stop: &AtomicBool, mut rng: Rng) {
    let delay = Duration::from_millis(30 + rng.below(120));
    let until = Instant::now() + delay;
    while Instant::now() < until {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let (point, action) = match rng.below(6) {
        0 => (points::WAL_SYNC, FailAction::Err),
        1 => (points::WAL_APPEND, FailAction::ShortWrite(rng.below(24) as usize)),
        2 => (points::WAL_APPEND, FailAction::TornWrite(rng.below(40) as usize)),
        3 => (points::PAGE_WRITE, FailAction::TornWrite(rng.below(300) as usize)),
        4 => (points::PAGE_SYNC, FailAction::Crash),
        _ => (points::WAL_SYNC, FailAction::Crash),
    };
    db.failpoints().arm(point, action);
}

/// The soak again, but over the paged storage engine: every round reopens
/// the page file + journal + WAL triple with real page-aware recovery, and
/// the saboteur also tears page writes and kills page syncs. Same
/// invariants: zero panics, conserved money, typed errors only.
#[test]
fn paged_chaos_soak_conserves_money_through_faults_and_crashes() {
    let seed = env_u64("CHAOS_SEED", 0xB00C_2026_0808);
    let soak = Duration::from_secs(env_u64("CHAOS_PAGED_SECS", 3));
    println!("paged chaos soak: CHAOS_SEED={seed} CHAOS_PAGED_SECS={}", soak.as_secs());
    let mut rng = Rng(seed);

    let base = std::env::temp_dir().join(format!(
        "relstore_chaos_paged_{}_{seed:x}",
        std::process::id()
    ));
    let cleanup = || {
        for ext in ["wal", "pages", "journal"] {
            let mut p = base.clone().into_os_string();
            p.push(format!(".{ext}"));
            let _ = std::fs::remove_file(p);
        }
    };
    cleanup();

    {
        let db = Database::open_paged(&base).unwrap();
        db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)").unwrap();
        let ins = db.prepare("INSERT INTO accounts VALUES (?, ?)").unwrap();
        db.session()
            .execute_batch(&ins, (0..ACCOUNTS).map(|id| (id, OPENING)))
            .unwrap();
    }

    let deadline = Instant::now() + soak;
    let total_commits = AtomicU64::new(0);
    let total_reads = AtomicU64::new(0);
    let total_obs_reads = AtomicU64::new(0);
    let mut rounds = 0u32;
    loop {
        rounds += 1;

        let db = Arc::new(Database::open_paged(&base).unwrap_or_else(|e| {
            panic!("paged round {rounds}: recovery failed (seed {seed}): {e}")
        }));
        assert!(db.is_paged());
        db.check_consistency().unwrap_or_else(|e| {
            panic!("paged round {rounds}: inconsistent after recovery (seed {seed}): {e}")
        });
        assert_eq!(
            bank_sum(&db),
            TOTAL,
            "paged round {rounds}: money not conserved through crash recovery (seed {seed})"
        );
        if Instant::now() >= deadline {
            cleanup();
            break;
        }

        let server = serve_with(
            Arc::clone(&db),
            "127.0.0.1:0",
            ServerConfig {
                workers: 6,
                max_connections: 32,
                poll_interval: Duration::from_millis(5),
                statement_deadline: Some(Duration::from_secs(2)),
                lock_wait_timeout: Duration::from_millis(25),
                idle_txn_timeout: Some(Duration::from_millis(40)),
                reap_interval: Duration::from_millis(10),
                slow_query_threshold: Some(Duration::from_millis(5)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let obs_baseline = db.stats();

        let round_ms = 150 + rng.below(200);
        let fault_round = rng.chance(50);
        let stop = AtomicBool::new(false);
        let mut seeds = [0u64; 8];
        for s in &mut seeds {
            *s = rng.next();
        }

        std::thread::scope(|s| {
            let stop = &stop;
            let commits = &total_commits;
            let reads = &total_reads;
            let obs = &total_obs_reads;
            s.spawn(move || committer(addr, stop, Rng(seeds[0]), seed, commits));
            s.spawn(move || committer(addr, stop, Rng(seeds[1]), seed, commits));
            s.spawn(move || scanner(addr, stop, seed, reads));
            s.spawn(move || abandoner(addr, stop, Rng(seeds[2]), seed));
            s.spawn(move || disconnector(addr, stop, Rng(seeds[3])));
            s.spawn(move || monitor(addr, stop, seed, obs));
            let dbref = &db;
            if fault_round {
                s.spawn(move || paged_saboteur(dbref, stop, Rng(seeds[4])));
            }
            std::thread::sleep(Duration::from_millis(round_ms));
            stop.store(true, Ordering::SeqCst);
        });
        server.shutdown();
        assert_obs_invariants(&db, &obs_baseline, rounds, seed);

        db.reap_idle(Duration::ZERO);
        db.vacuum_all();
        db.check_consistency().unwrap_or_else(|e| {
            panic!("paged round {rounds}: inconsistent after round (seed {seed}): {e}")
        });
        assert_eq!(
            bank_sum(&db),
            TOTAL,
            "paged round {rounds}: money not conserved in memory (seed {seed})"
        );

        if !fault_round && rng.chance(50) {
            let _ = db.checkpoint();
        }
        drop(db);
    }

    let commits = total_commits.load(Ordering::Relaxed);
    let reads = total_reads.load(Ordering::Relaxed);
    let obs_reads = total_obs_reads.load(Ordering::Relaxed);
    println!(
        "paged chaos soak: {rounds} round(s), {commits} commit(s), {reads} invariant read(s), \
         {obs_reads} system-table read(s)"
    );
    assert!(rounds >= 2, "the paged soak must complete at least one full round");
    assert!(commits > 0, "committers made no progress at all (seed {seed})");
    assert!(reads > 0, "scanners made no progress at all (seed {seed})");
    assert!(
        obs_reads > 0,
        "the system-table monitor made no progress at all (seed {seed})"
    );
}
