//! Exhaustive torn-tail recovery: a small durable log is truncated at
//! **every** byte position from the segment header to the end, and each
//! truncation must recover exactly the longest clean record prefix — with
//! the leftover bytes counted, never a panic, and never a phantom commit.

use relstore::io::{decode_segment, record_boundaries, SEGMENT_HEADER_LEN};
use relstore::wal::LogRecord;
use relstore::{Database, DurabilityPolicy, MemDevice, OpStats};

#[test]
fn every_truncation_point_recovers_the_longest_clean_prefix() {
    // A deliberately small workload: the test reopens the database once per
    // byte of log, so the log must stay a few hundred bytes long.
    let db =
        Database::open_with_device(Box::new(MemDevice::new()), DurabilityPolicy::Always).unwrap();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY, state TEXT)").unwrap();
    db.execute("INSERT INTO jobs VALUES (1, 'idle')").unwrap();
    db.execute("INSERT INTO jobs VALUES (2, 'busy')").unwrap();
    db.execute("UPDATE jobs SET state = 'done' WHERE job_id = 1").unwrap();
    db.flush_log().unwrap();
    let bytes = db.durable_log_bytes().unwrap();
    assert!(
        bytes.len() < 2048,
        "keep the exhaustive sweep cheap; log grew to {} bytes",
        bytes.len()
    );

    let boundaries = record_boundaries(&bytes).unwrap();
    assert_eq!(boundaries[0] as usize, SEGMENT_HEADER_LEN);

    // Expected state per boundary: replay each clean prefix once up front.
    let states: Vec<Vec<String>> = boundaries
        .iter()
        .map(|&b| catalog_fingerprint(&bytes[..b as usize]))
        .collect();

    for t in SEGMENT_HEADER_LEN..=bytes.len() {
        // The longest record boundary at or before the cut.
        let idx = boundaries.iter().rposition(|&b| b as usize <= t).unwrap();
        let b = boundaries[idx] as usize;

        let db = Database::open_with_device(
            Box::new(MemDevice::with_contents(bytes[..t].to_vec())),
            DurabilityPolicy::Always,
        )
        .unwrap_or_else(|e| panic!("truncation at byte {t} must recover, got: {e}"));
        assert_eq!(
            catalog_of(&db),
            states[idx],
            "truncation at byte {t} must match the boundary at byte {b}"
        );
        db.check_consistency().unwrap();
        assert_eq!(
            db.stats().recovery_truncated_bytes,
            (t - b) as u64,
            "truncation at byte {t}: exactly the partial record is repaired"
        );
    }
}

/// The rows a recovery from `prefix` must produce, via one throwaway replay.
fn catalog_fingerprint(prefix: &[u8]) -> Vec<String> {
    let db = Database::open_with_device(
        Box::new(MemDevice::with_contents(prefix.to_vec())),
        DurabilityPolicy::Always,
    )
    .unwrap();
    catalog_of(&db)
}

fn catalog_of(db: &Database) -> Vec<String> {
    if !db.table_names().iter().any(|t| t == "jobs") {
        return Vec::new();
    }
    let q = db.query("SELECT * FROM jobs ORDER BY job_id").unwrap();
    q.rows.iter().map(|r| format!("{r:?}")).collect()
}

/// Truncating the segment header itself (a crash during the very first
/// write of a fresh log) recovers an empty database.
#[test]
fn a_torn_segment_header_recovers_an_empty_database() {
    let db =
        Database::open_with_device(Box::new(MemDevice::new()), DurabilityPolicy::Always).unwrap();
    db.execute("CREATE TABLE jobs (job_id INT PRIMARY KEY)").unwrap();
    db.flush_log().unwrap();
    let bytes = db.durable_log_bytes().unwrap();

    for t in 0..SEGMENT_HEADER_LEN {
        let db = Database::open_with_device(
            Box::new(MemDevice::with_contents(bytes[..t].to_vec())),
            DurabilityPolicy::Always,
        )
        .unwrap_or_else(|e| panic!("header torn at byte {t} must recover, got: {e}"));
        assert!(db.table_names().is_empty());
        // A fresh header was re-laid: the database is usable and durable.
        db.execute("CREATE TABLE probe (id INT PRIMARY KEY)").unwrap();
        assert!(db.is_durable());
    }
}

/// Every recovered prefix contains only whole records: the decoder's view
/// of the truncated log agrees byte-for-byte with what recovery used.
#[test]
fn decoder_and_recovery_agree_on_the_committed_prefix() {
    let db =
        Database::open_with_device(Box::new(MemDevice::new()), DurabilityPolicy::Always).unwrap();
    db.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    db.flush_log().unwrap();
    let bytes = db.durable_log_bytes().unwrap();

    for t in SEGMENT_HEADER_LEN..=bytes.len() {
        let mut scratch = OpStats::default();
        let seg = decode_segment(&bytes[..t], &mut scratch).unwrap();
        assert_eq!(seg.valid_len + seg.truncated_bytes, t as u64);
        // Commits visible to the decoder are exactly the commits recovery
        // replays — no off-by-one at any cut.
        let commits = seg
            .records
            .iter()
            .filter(|r| matches!(r, LogRecord::Commit { .. }))
            .count();
        let db = Database::open_with_device(
            Box::new(MemDevice::with_contents(bytes[..t].to_vec())),
            DurabilityPolicy::Always,
        )
        .unwrap();
        let rows = if db.table_names().is_empty() {
            0
        } else {
            db.table_len("t").unwrap()
        };
        assert_eq!(rows, commits.saturating_sub(1), "at cut {t}");
    }
}
