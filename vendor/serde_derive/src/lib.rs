//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace has no network access to a crates registry, so the real
//! `serde_derive` cannot be fetched. Nothing in the repository serialises
//! values today — the derives exist so type definitions stay source-compatible
//! with real serde when the workspace is built online — so expanding the
//! derives to nothing is behaviour-preserving.

use proc_macro::TokenStream;

/// Expands to nothing; the `Serialize` marker trait has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `Deserialize` marker trait has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
