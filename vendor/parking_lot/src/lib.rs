//! Minimal stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the subset of the API the workspace uses: a non-poisoning
//! [`Mutex`] whose `lock()` returns the guard directly (no `Result`), and a
//! non-poisoning [`RwLock`] with the same guard-direct `read()`/`write()`
//! shape. Swap this path dependency for the real `parking_lot = "0.12"` when
//! building with network access.

use std::fmt;
use std::sync::PoisonError;

/// A non-poisoning mutual-exclusion lock with the `parking_lot` API shape.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a panic in
    /// a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A non-poisoning reader-writer lock with the `parking_lot` API shape:
/// any number of concurrent readers, or one writer.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`]; releases the shared lock on drop.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`]; releases the exclusive lock on drop.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until no writer holds the lock.
    /// Unlike `std`, a panic in a previous holder does not poison the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until all guards are gone.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        assert!(l.try_write().is_none());
        drop((r1, r2));
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn rwlock_writer_excludes_readers() {
        let l = RwLock::new(0);
        let w = l.write();
        assert!(l.try_read().is_none());
        drop(w);
        assert_eq!(*l.read(), 0);
    }
}
