//! Minimal stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the subset of the API the workspace uses: a non-poisoning
//! [`Mutex`] whose `lock()` returns the guard directly (no `Result`). Swap
//! this path dependency for the real `parking_lot = "0.12"` when building
//! with network access.

use std::fmt;
use std::sync::PoisonError;

/// A non-poisoning mutual-exclusion lock with the `parking_lot` API shape.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a panic in
    /// a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
