//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The container cannot reach a crates registry, so this crate satisfies the
//! workspace's `criterion` dev-dependency locally with the API subset the
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size` / `measurement_time` / `warm_up_time`, `Bencher::iter`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark warms up, then runs
//! timed batches until the measurement budget elapses, and reports the mean,
//! best and worst per-iteration time of the batches on stdout. That is
//! enough to compare hot paths before and after an optimisation; swap this
//! path dependency for the real `criterion = "0.5"` for statistics, charts
//! and outlier analysis when building with network access.

use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark with the driver's default settings.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        bencher.print(name);
        self
    }

    /// Starts a named group of benchmarks whose settings can be tuned.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs `f` as a named benchmark with the group's settings.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            report: None,
        };
        f(&mut bencher);
        bencher.print(name);
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Report {
    mean_ns: f64,
    best_ns: f64,
    worst_ns: f64,
    iterations: u64,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring batches until the
    /// measurement budget elapses.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also calibrates the batch size so one batch is ~1/sample
        // of the measurement budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let batch_budget =
            self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let batch = ((batch_budget / per_iter).round() as u64).max(1);

        let mut batches: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement_time && batches.len() < self.sample_size * 4
        {
            let t = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
            batches.push(ns);
            total_iters += batch;
        }
        let mean = batches.iter().sum::<f64>() / batches.len().max(1) as f64;
        let best = batches.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = batches.iter().copied().fold(0.0f64, f64::max);
        self.report = Some(Report {
            mean_ns: mean,
            best_ns: best,
            worst_ns: worst,
            iterations: total_iters,
        });
    }

    fn print(&self, name: &str) {
        match &self.report {
            Some(r) => println!(
                "{name:<40} time: [{} {} {}]  ({} iterations)",
                fmt_ns(r.best_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.worst_ns),
                r.iterations
            ),
            None => println!("{name:<40} (no measurement taken)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_report() {
        let mut c = Criterion {
            sample_size: 5,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_apply_settings() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10));
        g.bench_function("noop", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }
}
