//! Minimal stand-in for the `serde` facade.
//!
//! The container cannot reach a crates registry, so this crate satisfies the
//! workspace's `serde` dependency locally. It provides the two trait names and
//! re-exports no-op derive macros; nothing in the repository performs actual
//! serialisation, so marker traits with blanket impls are sufficient. Swap
//! this path dependency for the real `serde = { version = "1", features =
//! ["derive"] }` when building with network access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
