//! Test configuration, the deterministic RNG, and case-failure reporting.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A small, fast, deterministic RNG (splitmix64). Each property derives its
/// seed from the test name so runs are reproducible without a seed file, and
/// `PROPTEST_SEED` perturbs every property at once when exploration is wanted.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                seed ^= v;
            }
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift mapping; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
