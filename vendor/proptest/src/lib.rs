//! Minimal stand-in for the `proptest` crate.
//!
//! The container cannot reach a crates registry, so this crate satisfies the
//! workspace's `proptest` dev-dependency locally with the subset of the API
//! the test suite uses: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, integer-range and tuple strategies, [`prop_oneof!`],
//! `prop::collection::vec`, regex-shaped string strategies (approximated),
//! and the `prop_assert*` macros.
//!
//! Generation is deterministic (seeded per test name) so failures reproduce;
//! shrinking is not implemented — a failing case reports its inputs via
//! `Debug` instead. Swap this path dependency for the real `proptest = "1"`
//! when building with network access.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the `proptest!` style of test needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec` works as in real proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` (the attribute is written inside the macro, as with
/// real proptest) that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render inputs up front: the body takes the values by move.
                let inputs = format!("{:?}", ($(&$arg,)+));
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed on case {} of {}: {}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )* };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Like `assert!`, but fails the property (with its inputs reported) instead
/// of unwinding directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the property instead of unwinding directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Like `assert_ne!`, but fails the property instead of unwinding directly.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}
