//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy producing `Vec`s of values from `element`, with a length drawn
/// uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_in_range() {
        let mut rng = TestRng::for_test("vec");
        let strat = vec(0..5i64, 1..9);
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }
}
