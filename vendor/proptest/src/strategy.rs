//! Value-generation strategies.

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from an RNG.
///
/// Unlike real proptest there is no value tree or shrinking; `generate`
/// produces a fresh value directly.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Filters generated values; resamples (up to a bound) until `f` accepts.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.whence);
    }
}

/// Uniform choice between several strategies of the same value type
/// (the expansion of [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Chooses uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty => $wide:ty),+ $(,)?) => { $(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as $wide)
                    .wrapping_sub(*self.start() as $wide)
                    .wrapping_add(1) as u64;
                if span == 0 {
                    // Full-domain range: any value.
                    return rng.next_u64() as $ty;
                }
                (*self.start() as $wide).wrapping_add(rng.below(span) as $wide) as $ty
            }
        }
    )+ };
}

int_range_strategy!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => { $(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+ };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String strategies from regex-shaped patterns, approximated.
///
/// Real proptest compiles the pattern as a regex. This stand-in only honours
/// a trailing `{m,n}` repetition count (default `{0,8}`) and draws characters
/// from a printable pool that deliberately includes SQL-hostile characters
/// (quotes, backslashes, comment dashes) plus some multi-byte code points —
/// enough for the escaping/round-trip properties the suite expresses with
/// patterns like `"\\PC{0,40}"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_repeat(self).unwrap_or((0, 8));
        let span = (max - min + 1) as u64;
        let len = min + rng.below(span) as usize;
        const POOL: &[char] = &[
            'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', '_', '-', '.', ',', ';',
            ':', '!', '?', '(', ')', '*', '/', '+', '=', '<', '>', '%', '&', '#', '@', '~', '^',
            '|', '[', ']', '{', '}', '\'', '\'', '"', '\\', '`', '$', 'é', 'ß', '中', '💥', '–',
        ];
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(POOL[rng.below(POOL.len() as u64) as usize]);
        }
        out
    }
}

fn parse_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_suffix('}')?;
    let open = rest.rfind('{')?;
    let body = &rest[open + 1..];
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    (lo <= hi).then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (3..17i64).generate(&mut rng);
            assert!((3..17).contains(&v));
            let v = (0..4u8).generate(&mut rng);
            assert!(v < 4);
            let v = (1..=5usize).generate(&mut rng);
            assert!((1..=5).contains(&v));
        }
    }

    #[test]
    fn map_union_and_tuples_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = crate::prop_oneof![
            (0..10i64).prop_map(|v| v * 2),
            (100..110i64, 0..1i64).prop_map(|(a, _)| a),
        ];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20 || (100..110).contains(&v));
        }
    }

    #[test]
    fn string_pattern_length_honoured() {
        let mut rng = TestRng::for_test("strings");
        let mut saw_quote = false;
        for _ in 0..300 {
            let s = "\\PC{0,40}".generate(&mut rng);
            assert!(s.chars().count() <= 40);
            saw_quote |= s.contains('\'');
        }
        assert!(saw_quote, "pool should exercise quote escaping");
    }

    #[test]
    fn filter_resamples() {
        let mut rng = TestRng::for_test("filter");
        let strat = (0..100i64).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }
}
